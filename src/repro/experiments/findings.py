"""Findings F.1-F.12: qualitative claims of the paper checked against regenerated data.

Each check returns a :class:`Finding` with the measured value(s), the paper's
claim, and whether the *shape* of the claim holds in the reproduction.  The
thresholds are deliberately looser than the paper's exact numbers: the
substrate is a simulator, so we check who wins and by roughly what factor,
not absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..profiler.events import CATEGORY_BACKEND, CATEGORY_CUDA_API, CATEGORY_GPU, CATEGORY_PYTHON
from .fig4 import Fig4Result
from .fig5 import Fig5Result
from .fig7 import Fig7Result
from .fig8 import Fig8Result
from .fig11 import Fig11Result

TF_EAGER = "Tensorflow Eager"
TF_GRAPH = "Tensorflow Graph"
TF_AUTOGRAPH = "Tensorflow Autograph"
TORCH_EAGER = "Pytorch Eager"

OP_INFERENCE = "inference"
OP_BACKPROP = "backpropagation"
OP_SIMULATION = "simulation"


@dataclass
class Finding:
    """One checked finding."""

    finding_id: str
    claim: str
    measured: Dict[str, float]
    holds: bool

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        status = "HOLDS" if self.holds else "DIFFERS"
        values = ", ".join(f"{k}={v:.3g}" for k, v in self.measured.items())
        return f"[{status}] {self.finding_id}: {self.claim} ({values})"


# --------------------------------------------------------------------- fig 4
def check_f1_eager_slower(fig4: Fig4Result) -> Finding:
    """F.1: Eager execution is substantially slower than Graph and Autograph."""
    totals = fig4.total_times_sec()
    eager = totals[TF_EAGER]
    graph = totals[TF_GRAPH]
    autograph = totals[TF_AUTOGRAPH]
    ratio_graph = eager / graph
    ratio_autograph = eager / autograph
    graph_vs_autograph = max(graph, autograph) / min(graph, autograph)
    holds = ratio_graph > 1.5 and ratio_autograph > 1.5 and graph_vs_autograph < 1.6
    return Finding("F.1", "TF Eager is 1.9x-4.8x slower than Graph/Autograph, which are close to each other",
                   {"eager/graph": ratio_graph, "eager/autograph": ratio_autograph,
                    "graph_vs_autograph": graph_vs_autograph}, holds)


def check_f2_autograph_reduces_transitions(fig4: Fig4Result) -> Finding:
    """F.2: Autograph nearly eliminates Python->Backend transitions for inference."""
    transitions = fig4.transitions_per_iteration()
    autograph_inference = transitions[TF_AUTOGRAPH].get(OP_INFERENCE, {}).get(CATEGORY_BACKEND, 0.0)
    graph_inference = transitions[TF_GRAPH].get(OP_INFERENCE, {}).get(CATEGORY_BACKEND, 0.0)
    breakdown = fig4.breakdown_sec()
    graph_python = breakdown[TF_GRAPH].get(OP_INFERENCE, {}).get(CATEGORY_PYTHON, 0.0)
    autograph_python = breakdown[TF_AUTOGRAPH].get(OP_INFERENCE, {}).get(CATEGORY_PYTHON, 0.0)
    python_reduction = graph_python / autograph_python if autograph_python > 0 else float("inf")
    holds = autograph_inference < 0.2 * max(graph_inference, 1e-9) and python_reduction > 1.5
    return Finding("F.2", "Autograph reduces Python->Backend transitions (and Python time) vs Graph",
                   {"autograph_transitions_per_iter": autograph_inference,
                    "graph_transitions_per_iter": graph_inference,
                    "python_reduction": python_reduction}, holds)


def check_f3_pytorch_vs_tf_eager(fig4: Fig4Result) -> Finding:
    """F.3: PyTorch Eager beats TF Eager; Graph/Autograph beat PyTorch Eager."""
    totals = fig4.total_times_sec()
    if TORCH_EAGER not in totals:
        return Finding("F.3", "requires the ReAgent (PyTorch Eager) configuration", {}, False)
    tf_eager_over_torch = totals[TF_EAGER] / totals[TORCH_EAGER]
    torch_over_graph = totals[TORCH_EAGER] / min(totals[TF_GRAPH], totals[TF_AUTOGRAPH])
    transitions = fig4.transitions_per_iteration()
    tf_eager_inference = transitions[TF_EAGER].get(OP_INFERENCE, {}).get(CATEGORY_BACKEND, 0.0)
    torch_inference = transitions[TORCH_EAGER].get(OP_INFERENCE, {}).get(CATEGORY_BACKEND, 1e-9)
    holds = tf_eager_over_torch > 1.3 and torch_over_graph > 1.2 and tf_eager_inference > torch_inference
    return Finding("F.3", "PyTorch Eager ~2.3x faster than TF Eager; Graph/Autograph ~2x faster than PyTorch Eager",
                   {"tf_eager/torch_eager": tf_eager_over_torch,
                    "torch_eager/best_graph": torch_over_graph,
                    "tf_eager_inference_transitions": tf_eager_inference,
                    "torch_inference_transitions": torch_inference}, holds)


def check_f4_ddpg_backprop_inflation(fig4_ddpg: Fig4Result) -> Finding:
    """F.4: DDPG Graph backpropagation is inflated vs Autograph (MPI Adam + separate calls)."""
    breakdown = fig4_ddpg.breakdown_sec()
    graph_backprop = sum(breakdown[TF_GRAPH].get(OP_BACKPROP, {}).values())
    autograph_backprop = sum(breakdown[TF_AUTOGRAPH].get(OP_BACKPROP, {}).values())
    ratio = graph_backprop / autograph_backprop if autograph_backprop > 0 else float("inf")
    graph_cuda = breakdown[TF_GRAPH].get(OP_BACKPROP, {}).get(CATEGORY_CUDA_API, 0.0)
    autograph_cuda = breakdown[TF_AUTOGRAPH].get(OP_BACKPROP, {}).get(CATEGORY_CUDA_API, 1e-9)
    holds = ratio > 1.8 and graph_cuda / autograph_cuda > 1.3
    return Finding("F.4", "DDPG Graph backpropagation ~3.7x slower than Autograph (MPI-friendly Adam)",
                   {"graph/autograph_backprop": ratio, "cuda_inflation": graph_cuda / autograph_cuda}, holds)


def check_f5_autograph_simulation_python_inflation(fig4_ddpg: Fig4Result, fig4_td3: Fig4Result) -> Finding:
    """F.5: Autograph inflates simulation Python time for DDPG (train_freq=100) but not TD3 (1000)."""
    ddpg = fig4_ddpg.breakdown_sec()
    td3 = fig4_td3.breakdown_sec()
    ddpg_ratio = (ddpg[TF_AUTOGRAPH].get(OP_SIMULATION, {}).get(CATEGORY_PYTHON, 0.0)
                  / max(ddpg[TF_EAGER].get(OP_SIMULATION, {}).get(CATEGORY_PYTHON, 1e-9), 1e-9))
    td3_ratio = (td3[TF_AUTOGRAPH].get(OP_SIMULATION, {}).get(CATEGORY_PYTHON, 0.0)
                 / max(td3[TF_EAGER].get(OP_SIMULATION, {}).get(CATEGORY_PYTHON, 1e-9), 1e-9))
    holds = ddpg_ratio > 1.3 and ddpg_ratio > td3_ratio
    return Finding("F.5", "Autograph inflates DDPG's simulation Python time ~2.4x (poorly amortised tf.function calls)",
                   {"ddpg_python_inflation": ddpg_ratio, "td3_python_inflation": td3_ratio}, holds)


def check_f6_autograph_inference_backend_inflation(fig4: Fig4Result) -> Finding:
    """F.6: Autograph inflates inference Backend time vs Graph without extra transitions."""
    breakdown = fig4.breakdown_sec()
    autograph_backend = breakdown[TF_AUTOGRAPH].get(OP_INFERENCE, {}).get(CATEGORY_BACKEND, 0.0)
    graph_backend = breakdown[TF_GRAPH].get(OP_INFERENCE, {}).get(CATEGORY_BACKEND, 1e-9)
    ratio = autograph_backend / graph_backend
    transitions = fig4.transitions_per_iteration()
    autograph_transitions = transitions[TF_AUTOGRAPH].get(OP_INFERENCE, {}).get(CATEGORY_BACKEND, 0.0)
    graph_transitions = transitions[TF_GRAPH].get(OP_INFERENCE, {}).get(CATEGORY_BACKEND, 0.0)
    holds = ratio > 2.0 and autograph_transitions <= graph_transitions
    return Finding("F.6", "Autograph inference Backend time inflated ~4x vs Graph despite fewer transitions",
                   {"backend_inflation": ratio,
                    "autograph_transitions": autograph_transitions,
                    "graph_transitions": graph_transitions}, holds)


def check_f7_low_gpu_usage(fig4: Fig4Result) -> Finding:
    """F.7: total GPU time is low (<= ~14%) across every framework configuration."""
    fractions = fig4.gpu_fractions()
    worst = max(fractions.values())
    holds = worst <= 0.20
    return Finding("F.7", "GPU time is at most ~14% of training time in every framework",
                   {f"gpu_frac[{label}]": value for label, value in fractions.items()} | {"max": worst},
                   holds)


def check_f8_cuda_api_dominates_gpu(fig4: Fig4Result) -> Finding:
    """F.8: CPU-side CUDA API time exceeds GPU kernel execution time (avg ~3.6x)."""
    ratios = {}
    for label, run in fig4.runs.items():
        analysis = run.analysis
        cuda = analysis.overlap.category_time_us(CATEGORY_CUDA_API, include_untracked=False)
        gpu = analysis.gpu_time_us()
        ratios[label] = cuda / gpu if gpu > 0 else float("inf")
    mean_ratio = sum(ratios.values()) / len(ratios)
    holds = all(ratio > 1.0 for ratio in ratios.values()) and mean_ratio > 1.5
    return Finding("F.8", "CUDA API time dominates GPU kernel time (average ~3.6x)",
                   {**ratios, "mean": mean_ratio}, holds)


# --------------------------------------------------------------------- fig 5
def check_f9_cpu_bound_across_algorithms(fig5: Fig5Result) -> Finding:
    """F.9: every algorithm is ~90% CPU-bound; even backprop/inference are <= ~13% GPU."""
    gpu_fracs = {algo: fig5.gpu_fraction(algo) for algo in fig5.runs}
    op_gpu = {f"{algo}:{op}": fig5.operation_gpu_fraction(algo, op)
              for algo in fig5.runs for op in (OP_BACKPROP, OP_INFERENCE)}
    holds = max(gpu_fracs.values()) <= 0.25 and max(op_gpu.values()) <= 0.35
    return Finding("F.9", "Training is CPU-bound across algorithms; GPU-heavy ops spend <=13% on GPU kernels",
                   {**{f"gpu[{k}]": v for k, v in gpu_fracs.items()}, **op_gpu}, holds)


def check_f10_on_policy_simulation_bound(fig5: Fig5Result) -> Finding:
    """F.10: on-policy algorithms are at least 3.5x more simulation-bound than off-policy."""
    ratio = fig5.on_policy_vs_off_policy_simulation_ratio()
    holds = ratio >= 2.5
    return Finding("F.10", "On-policy algorithms are >=3.5x more simulation-bound than off-policy",
                   {"min_on_policy/max_off_policy": ratio}, holds)


# --------------------------------------------------------------------- fig 8
def check_f11_misleading_gpu_utilization(fig8: Fig8Result) -> Finding:
    """F.11: nvidia-smi reports ~100% utilization while true GPU use is tiny."""
    reported = fig8.reported_utilization_pct()
    true_busy = fig8.true_busy_pct()
    worker_gpu_fraction = 100.0 * fig8.worker_gpu_fraction()
    holds = reported >= 80.0 and worker_gpu_fraction <= 25.0 and reported > 3.0 * true_busy
    return Finding("F.11", "nvidia-smi shows ~100% utilization although workers barely use the GPU",
                   {"reported_pct": reported, "true_busy_pct": true_busy,
                    "worker_gpu_pct": worker_gpu_fraction}, holds)


# --------------------------------------------------------------------- fig 7
def check_f12_simulation_always_large(fig7: Fig7Result) -> Finding:
    """F.12: simulation takes >=38% of training time on every simulator; ~99% on AirLearning."""
    fractions = {sim: fig7.simulation_fraction(sim) for sim in fig7.runs}
    min_fraction = min(fractions.values())
    airlearning = fractions.get("AirLearning", 1.0)
    holds = min_fraction >= 0.30 and airlearning >= 0.90
    return Finding("F.12", "Simulation is always a large bottleneck (>=38%; ~99.6% for AirLearning)",
                   {**{f"sim[{k}]": v for k, v in fractions.items()}, "min": min_fraction}, holds)


# ------------------------------------------------------------------- fig 11
def check_overhead_correction(fig11: Fig11Result, *, tolerance_percent: float = 16.0) -> Finding:
    """Appendix C.3: corrected training time within +/-16% of the uninstrumented time."""
    biases = {label: v.bias_percent for label, v in fig11.validations.items()}
    max_bias = fig11.max_abs_bias_percent()
    holds = max_bias <= tolerance_percent
    return Finding("C.3", f"Overhead correction within +/-{tolerance_percent:.0f}% of uninstrumented time",
                   {**biases, "max_abs_bias": max_bias}, holds)


def check_all(
    *,
    fig4_td3: Optional[Fig4Result] = None,
    fig4_ddpg: Optional[Fig4Result] = None,
    fig5: Optional[Fig5Result] = None,
    fig7: Optional[Fig7Result] = None,
    fig8: Optional[Fig8Result] = None,
    fig11: Optional[Fig11Result] = None,
) -> Dict[str, Finding]:
    """Check every finding for which the required figure results were supplied."""
    findings: Dict[str, Finding] = {}
    if fig4_td3 is not None:
        findings["F.1"] = check_f1_eager_slower(fig4_td3)
        findings["F.2"] = check_f2_autograph_reduces_transitions(fig4_td3)
        findings["F.3"] = check_f3_pytorch_vs_tf_eager(fig4_td3)
        findings["F.6"] = check_f6_autograph_inference_backend_inflation(fig4_td3)
        findings["F.7"] = check_f7_low_gpu_usage(fig4_td3)
        findings["F.8"] = check_f8_cuda_api_dominates_gpu(fig4_td3)
    if fig4_ddpg is not None:
        findings["F.4"] = check_f4_ddpg_backprop_inflation(fig4_ddpg)
        if fig4_td3 is not None:
            findings["F.5"] = check_f5_autograph_simulation_python_inflation(fig4_ddpg, fig4_td3)
    if fig5 is not None:
        findings["F.9"] = check_f9_cpu_bound_across_algorithms(fig5)
        findings["F.10"] = check_f10_on_policy_simulation_bound(fig5)
    if fig7 is not None:
        findings["F.12"] = check_f12_simulation_always_large(fig7)
    if fig8 is not None:
        findings["F.11"] = check_f11_misleading_gpu_utilization(fig8)
    if fig11 is not None:
        findings["C.3"] = check_overhead_correction(fig11)
    return findings
