"""Zoo sweep: every sim x algorithm pair through the batched rollout stack.

The Minigo pool (PRs 2-5) demonstrated cross-worker inference batching for
one workload.  The stepwise-driver refactor made that machinery
env-agnostic, and this sweep is its proof obligation: a grid over
**simulators x algorithm families x worker counts x replica counts** in
which every cell routes per-step policy evaluation through the shared
:class:`~repro.rollout.inference.InferenceService`.

Each cell runs twice with identical seeds:

* **batched** — ``FLUSH_MAX_BATCH``: the pool scheduler coalesces the
  pending steps of many workers into shared engine calls;
* **unbatched control** — ``FLUSH_UNBATCHED``: every policy evaluation is
  its own engine call, the serial per-step regime of the classic
  collection loop.

The headline per-cell numbers are the *cross-worker batch share* (fraction
of served batches spanning >1 worker) and the *engine-call reduction*
(unbatched calls / batched calls) — both must exceed their floors for the
batched stack to be doing real work, which ``tests/test_zoosweep.py``
pins.  Cells whose algorithm family cannot act in the sim's action space
(DQN on continuous control, DDPG on discrete) are recorded as skipped
rather than silently dropped.

Everything is a pure function of ``seed``: the report is byte-identical
across runs of the same configuration.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..rl.zoo import ZOO_ALGORITHMS, make_zoo_pool
from ..rollout.inference import FLUSH_MAX_BATCH, FLUSH_UNBATCHED
from ..sim import registry
from ..system import System

#: Simulators the default sweep grids over (>= 3 non-Go per the roadmap;
#: Go rides along as the discrete board-game workload, exercised by DQN/PPO
#: and skipped by continuous-control families).
DEFAULT_ZOO_SIMS = ("Pong", "Hopper", "Walker2D", "HalfCheetah", "Go")
#: Algorithm families swept (keys of ``repro.rl.zoo.ZOO_ALGORITHMS``).
DEFAULT_ZOO_ALGOS = ("DQN", "PPO", "DDPG")
DEFAULT_ZOO_WORKERS = (4, 8)
DEFAULT_ZOO_REPLICAS = (1, 2)
DEFAULT_ZOO_STEPS = 8


@dataclass
class ZooSweepPoint:
    """One (sim, algorithm, workers, replicas) cell: batched vs unbatched."""

    sim: str
    algorithm: str
    num_workers: int
    num_replicas: int
    steps: int                    #: env transitions collected (batched run)
    engine_calls: int             #: batched service calls
    rows: int                     #: policy evaluations served
    cross_worker_share: float     #: fraction of batches spanning >1 worker
    unbatched_engine_calls: int   #: control: one call per evaluation
    collection_span_us: float     #: batched virtual span (slowest worker)
    unbatched_span_us: float      #: control virtual span

    @property
    def mean_batch(self) -> float:
        return self.rows / self.engine_calls if self.engine_calls else 0.0

    @property
    def engine_call_reduction(self) -> float:
        """How many serial engine calls one batched call replaces."""
        return (self.unbatched_engine_calls / self.engine_calls
                if self.engine_calls else 0.0)

    @property
    def span_speedup(self) -> float:
        return (self.unbatched_span_us / self.collection_span_us
                if self.collection_span_us else 0.0)


@dataclass
class ZooSweepResult:
    sims: Tuple[str, ...]
    algorithms: Tuple[str, ...]
    worker_counts: Tuple[int, ...]
    replica_counts: Tuple[int, ...]
    steps_per_worker: int
    seed: int
    points: List[ZooSweepPoint]
    skipped: List[Tuple[str, str, str]]  #: (sim, algorithm, reason)

    def point(self, sim: str, algorithm: str, num_workers: int,
              num_replicas: int) -> ZooSweepPoint:
        for point in self.points:
            if (point.sim == sim and point.algorithm == algorithm
                    and point.num_workers == num_workers
                    and point.num_replicas == num_replicas):
                return point
        raise KeyError(f"no sweep point for sim={sim!r}, algorithm={algorithm!r}, "
                       f"workers={num_workers}, replicas={num_replicas}")

    def report(self) -> str:
        header = (f"{'sim':>12} {'algo':>5} {'wrk':>4} {'repl':>4} {'steps':>6} "
                  f"{'calls':>6} {'serial':>6} {'reduction':>9} {'xworker%':>8} "
                  f"{'batch':>6} {'span us':>10} {'speedup':>7}")
        lines = [
            f"Zoo sweep: {len(self.points)} cells over "
            f"{len(self.sims)} sims x {len(self.algorithms)} algorithm families, "
            f"workers={list(self.worker_counts)}, replicas={list(self.replica_counts)}, "
            f"{self.steps_per_worker} steps/worker (seed {self.seed})",
            "every cell routes per-step policy evaluation through the shared "
            "batched InferenceService; 'serial' is the unbatched control "
            "(one engine call per evaluation), 'reduction' = serial / calls",
            header,
        ]
        for point in self.points:
            lines.append(
                f"{point.sim:>12} {point.algorithm:>5} {point.num_workers:>4d} "
                f"{point.num_replicas:>4d} {point.steps:>6d} {point.engine_calls:>6d} "
                f"{point.unbatched_engine_calls:>6d} {point.engine_call_reduction:>8.1f}x "
                f"{100.0 * point.cross_worker_share:>7.1f}% {point.mean_batch:>6.1f} "
                f"{point.collection_span_us:>10.1f} {point.span_speedup:>6.2f}x")
        for sim, algorithm, reason in self.skipped:
            lines.append(f"{sim:>12} {algorithm:>5} {'skipped':>51} ({reason})")
        return "\n".join(lines)


def run_zoo_sweep(
    sims: Sequence[str] = DEFAULT_ZOO_SIMS,
    *,
    algorithms: Sequence[str] = DEFAULT_ZOO_ALGOS,
    worker_counts: Sequence[int] = DEFAULT_ZOO_WORKERS,
    replica_counts: Sequence[int] = DEFAULT_ZOO_REPLICAS,
    steps_per_worker: int = DEFAULT_ZOO_STEPS,
    seed: int = 0,
    trace_dir: Optional[str] = None,
) -> ZooSweepResult:
    """Run the workload zoo over the (sim, algorithm, workers, replicas) grid.

    With ``trace_dir`` set, every batched cell streams its full profiler
    trace into ``trace_dir/<sim>_<algo>_w<workers>_r<replicas>`` (a
    :class:`~repro.tracedb.store.TraceDB` per cell).
    """
    if not sims:
        raise ValueError("sims must be non-empty")
    unknown = [a for a in algorithms if a not in ZOO_ALGORITHMS]
    if unknown:
        raise ValueError(f"unknown zoo algorithms {unknown}; "
                         f"available: {sorted(ZOO_ALGORITHMS)}")
    if any(w <= 0 for w in worker_counts) or any(r <= 0 for r in replica_counts):
        raise ValueError("worker and replica counts must be positive")

    discrete = {
        sim: registry.make(sim, System.create(seed=0), seed=0).is_discrete
        for sim in sims
    }
    points: List[ZooSweepPoint] = []
    skipped: List[Tuple[str, str, str]] = []
    for sim in sims:
        for algorithm in algorithms:
            spec = ZOO_ALGORITHMS[algorithm]
            supported = (spec.supports_discrete if discrete[sim]
                         else spec.supports_continuous)
            if not supported:
                space = "discrete" if discrete[sim] else "continuous"
                skipped.append((sim, algorithm,
                                f"{algorithm} does not act in {space} action spaces"))
                continue
            for num_workers in worker_counts:
                for num_replicas in replica_counts:
                    cell_trace = None
                    if trace_dir is not None:
                        cell_trace = os.path.join(
                            trace_dir,
                            f"{sim}_{algorithm}_w{num_workers}_r{num_replicas}")
                    batched = make_zoo_pool(
                        sim, algorithm, num_workers,
                        steps_per_worker=steps_per_worker,
                        num_replicas=num_replicas,
                        flush_policy=FLUSH_MAX_BATCH,
                        seed=seed, profile=cell_trace is not None,
                        trace_dir=cell_trace)
                    batched.run()
                    control = make_zoo_pool(
                        sim, algorithm, num_workers,
                        steps_per_worker=steps_per_worker,
                        num_replicas=num_replicas,
                        flush_policy=FLUSH_UNBATCHED,
                        seed=seed)
                    control.run()
                    stats = batched.inference_service.stats
                    points.append(ZooSweepPoint(
                        sim=sim, algorithm=algorithm,
                        num_workers=num_workers, num_replicas=num_replicas,
                        steps=batched.total_steps(),
                        engine_calls=stats.engine_calls, rows=stats.rows,
                        cross_worker_share=stats.cross_worker_share,
                        unbatched_engine_calls=control.inference_service.stats.engine_calls,
                        collection_span_us=batched.collection_span_us(),
                        unbatched_span_us=control.collection_span_us()))
    return ZooSweepResult(
        sims=tuple(sims), algorithms=tuple(algorithms),
        worker_counts=tuple(worker_counts), replica_counts=tuple(replica_counts),
        steps_per_worker=steps_per_worker, seed=seed,
        points=points, skipped=skipped)
