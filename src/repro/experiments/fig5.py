"""Figure 5: RL algorithm survey (DDPG, SAC, A2C, PPO2 on Walker2D).

For each algorithm we regenerate the total training time and the
per-operation / per-category breakdown, expressed as a percentage of total
training time as in the paper's lower panel, and the simulation-bound
fractions behind findings F.9 and F.10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..hw.costmodel import CostModelConfig
from ..profiler import CATEGORY_GPU, report as report_mod
from ..rl import OFF_POLICY_ALGORITHMS, ON_POLICY_ALGORITHMS
from .common import DEFAULT_TIMESTEPS, WorkloadRun, WorkloadSpec, run_workload

#: Algorithms surveyed in Figure 5, with their on/off-policy classification.
SURVEY_ALGORITHMS = ["DDPG", "SAC", "A2C", "PPO2"]


@dataclass
class Fig5Result:
    simulator: str
    timesteps: int
    runs: Dict[str, WorkloadRun] = field(default_factory=dict)

    # ------------------------------------------------------------- reductions
    def total_times_sec(self) -> Dict[str, float]:
        return {algo: run.analysis.total_time_sec() for algo, run in self.runs.items()}

    def percent_breakdown(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """algorithm -> operation -> category -> percent of total training time."""
        out: Dict[str, Dict[str, Dict[str, float]]] = {}
        for algo, run in self.runs.items():
            breakdown = run.analysis.category_breakdown_us()
            total = sum(sum(cats.values()) for cats in breakdown.values())
            out[algo] = {
                op: {cat: 100.0 * value / total for cat, value in cats.items()}
                for op, cats in breakdown.items()
            }
        return out

    def simulation_fraction(self, algo: str) -> float:
        """Fraction of training time spent in the simulation operation."""
        return self.runs[algo].analysis.operation_fraction("simulation")

    def gpu_fraction(self, algo: str) -> float:
        return self.runs[algo].analysis.gpu_fraction()

    def operation_gpu_fraction(self, algo: str, operation: str) -> float:
        """Fraction of an operation's time spent executing GPU kernels."""
        analysis = self.runs[algo].analysis
        resources = analysis.resource_breakdown_us().get(operation, {})
        total = sum(resources.values())
        gpu = resources.get("GPU", 0.0) + resources.get("CPU + GPU", 0.0)
        return gpu / total if total > 0 else 0.0

    def on_policy_vs_off_policy_simulation_ratio(self) -> float:
        """min on-policy simulation share / max off-policy simulation share (finding F.10)."""
        on = [self.simulation_fraction(a) for a in self.runs if a in ON_POLICY_ALGORITHMS]
        off = [self.simulation_fraction(a) for a in self.runs if a in OFF_POLICY_ALGORITHMS]
        if not on or not off:
            raise ValueError("need both on-policy and off-policy runs")
        return min(on) / max(off)

    def report(self) -> str:
        analyses = {algo: run.analysis for algo, run in self.runs.items()}
        lines = [
            f"Figure 5: algorithm survey on {self.simulator}",
            report_mod.total_time_table(analyses),
            "",
            report_mod.breakdown_table(analyses, as_percent=True),
            "",
            "Simulation-bound fraction per algorithm:",
        ]
        for algo in self.runs:
            policy_type = "on-policy" if algo in ON_POLICY_ALGORITHMS else "off-policy"
            lines.append(f"  {algo:5s} ({policy_type:10s}): {100.0 * self.simulation_fraction(algo):5.1f}%")
        return "\n".join(lines)


def run_fig5(
    *,
    simulator: str = "Walker2D",
    algorithms: Optional[List[str]] = None,
    timesteps: int = DEFAULT_TIMESTEPS,
    seed: int = 0,
    cost_config: Optional[CostModelConfig] = None,
) -> Fig5Result:
    """Run the algorithm survey of Figure 5."""
    algorithms = algorithms if algorithms is not None else list(SURVEY_ALGORITHMS)
    result = Fig5Result(simulator=simulator, timesteps=timesteps)
    for algo in algorithms:
        spec = WorkloadSpec(algo=algo, simulator=simulator, total_timesteps=timesteps, seed=seed)
        result.runs[algo] = run_workload(spec, cost_config=cost_config,
                                         use_ground_truth_calibration=True)
    return result
