"""Fault sweep: the serving tier under injected replica faults.

The serve sweep (PR 6) measured the admission defences against *load*; this
sweep measures the recovery machinery (PR 10) against *failures*.  Over a
**fault rate × admission policy × replica count** grid it runs the same
open-loop Poisson traffic while a seeded :class:`~repro.faults.plan.FaultPlan`
crashes replicas (with later recovery), slows them down, and drops or
corrupts wire frames — then reports what the fleet kept: goodput,
availability (fraction of replica capacity that stayed up), rows
re-dispatched off dead horizons, and corrupt frames survived.

The two policy arms isolate degraded-mode admission:

* ``degrade`` — capacity loss tightens the ingress window and every token
  bucket proportionally to surviving capacity, so overload surfaces as
  cheap early sheds instead of deadline misses on the survivors.
* ``full`` — the no-degrade control: admission stays at full-fleet
  capacity while replicas are down, queueing the backlog onto the
  survivors.

At fault rate 0 the plan is empty, the injector is never built, and every
run is bit-for-bit the fault-free serving tier — the identity the bench
(`benchmarks/test_bench_faults.py`) pins.  Every fault, recovery and
re-dispatch is an event in the server's decision log, so a fixed seed
replays the whole history line-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..faults.plan import FaultPlan
from ..minigo.selfplay import PolicyValueNet
from ..serving import (
    InferenceServer,
    LoadGenerator,
    PoissonProcess,
    RetryPolicy,
    SLOReport,
    build_slo_report,
    estimate_capacity_rows_per_sec,
    run_serving,
)

#: Replica crash rates swept (crashes per virtual second of trace); 0 is the
#: fault-free control every other point is compared against.
DEFAULT_FAULT_RATES = (0.0, 50.0, 150.0)
DEFAULT_FAULT_POLICIES = ("degrade", "full")
DEFAULT_FAULT_REPLICAS = (2, 4)

#: Server + traffic shape of the default sweep (mirrors the serve sweep).
DEFAULT_FAULT_KWARGS = dict(
    board_size=5,
    hidden=(16,),
    max_batch=8,
    # Deeper window + tighter deadline than the serve sweep: the degrade/full
    # contrast needs a backlog deep enough that queueing onto crash survivors
    # can cross the deadline — at window 16 nothing is ever late and degraded
    # admission has nothing to win.
    queue_capacity=192,
    flush_timeout_us=300.0,
    rate_burst=4.0,
    num_clients=128,
    request_deadline_us=2_000.0,
    horizon_us=30_000.0,
    load_multiplier=1.2,      #: offered rate as a multiple of fleet capacity
    mean_downtime_us=8_000.0,
    frame_loss_per_sec=20.0,
    frame_corrupt_per_sec=20.0,
)


@dataclass
class FaultSweepPoint:
    """One (fault rate, policy, replicas) setting's outcome."""

    crash_rate_per_sec: float
    policy: str               #: "degrade" | "full" (no-degrade control)
    num_replicas: int
    rate_per_sec: float       #: offered arrival rate
    plan_events: int          #: events in the seeded fault plan
    slo: SLOReport


@dataclass
class FaultSweepResult:
    board_size: int
    max_batch: int
    queue_capacity: int
    num_clients: int
    request_deadline_us: float
    horizon_us: float
    load_multiplier: float
    capacity_rows_per_sec: float
    points: List[FaultSweepPoint]

    def point(self, crash_rate: float, policy: str,
              num_replicas: int) -> FaultSweepPoint:
        for point in self.points:
            if (point.crash_rate_per_sec == crash_rate
                    and point.policy == policy
                    and point.num_replicas == num_replicas):
                return point
        raise KeyError(f"no sweep point for crash_rate={crash_rate}, "
                       f"policy={policy!r}, replicas={num_replicas}")

    def report(self) -> str:
        header = (f"{'faults/s':>8} {'policy':>8} {'repl':>4} {'events':>6} "
                  f"{'offered/s':>10} {'goodput/s':>10} {'shed%':>6} "
                  f"{'late%':>6} {'avail%':>7} {'crash':>5} {'redisp':>6} "
                  f"{'corrupt':>7} {'latency p99 us':>14}")
        lines = [
            f"Fault sweep: poisson arrivals from {self.num_clients} clients at "
            f"{self.load_multiplier:g}x fleet capacity, board={self.board_size}, "
            f"max_batch={self.max_batch}, window={self.queue_capacity}, "
            f"deadline {self.request_deadline_us:.0f}us, "
            f"horizon {self.horizon_us / 1e6:.4f}s",
            f"measured capacity: {self.capacity_rows_per_sec:.0f} rows/s per "
            f"replica; crash rate is injected replica crashes per virtual "
            f"second (with seeded recovery), plus frame loss/corruption",
            header,
        ]
        for point in self.points:
            slo = point.slo
            latency = slo.latency_us
            latency_txt = "n/a" if latency is None else f"{latency[99.0]:.0f}"
            lines.append(
                f"{point.crash_rate_per_sec:>8.1f} {point.policy:>8} "
                f"{point.num_replicas:>4d} {point.plan_events:>6d} "
                f"{slo.offered_rate_per_sec:>10.1f} {slo.goodput_per_sec:>10.1f} "
                f"{100.0 * slo.shed_fraction:>5.1f}% "
                f"{100.0 * slo.timeout_fraction:>5.1f}% "
                f"{100.0 * slo.availability:>6.2f}% "
                f"{slo.replica_crashes:>5d} {slo.redispatched_rows:>6d} "
                f"{slo.corrupt_frames:>7d} {latency_txt:>14}")
        lines.append(
            "note: 'full' keeps full-capacity admission while replicas are "
            "down (the no-degrade control); 'degrade' tightens the ingress "
            "window and token buckets to surviving capacity, trading early "
            "sheds for fewer deadline misses on the survivors")
        return "\n".join(lines)


def run_fault_sweep(
    crash_rates: Sequence[float] = DEFAULT_FAULT_RATES,
    *,
    policies: Sequence[str] = DEFAULT_FAULT_POLICIES,
    replica_counts: Sequence[int] = DEFAULT_FAULT_REPLICAS,
    board_size: int = DEFAULT_FAULT_KWARGS["board_size"],
    hidden: tuple = DEFAULT_FAULT_KWARGS["hidden"],
    max_batch: int = DEFAULT_FAULT_KWARGS["max_batch"],
    queue_capacity: int = DEFAULT_FAULT_KWARGS["queue_capacity"],
    flush_timeout_us: float = DEFAULT_FAULT_KWARGS["flush_timeout_us"],
    rate_burst: float = DEFAULT_FAULT_KWARGS["rate_burst"],
    num_clients: int = DEFAULT_FAULT_KWARGS["num_clients"],
    request_deadline_us: float = DEFAULT_FAULT_KWARGS["request_deadline_us"],
    horizon_us: float = DEFAULT_FAULT_KWARGS["horizon_us"],
    load_multiplier: float = DEFAULT_FAULT_KWARGS["load_multiplier"],
    mean_downtime_us: float = DEFAULT_FAULT_KWARGS["mean_downtime_us"],
    frame_loss_per_sec: float = DEFAULT_FAULT_KWARGS["frame_loss_per_sec"],
    frame_corrupt_per_sec: float = DEFAULT_FAULT_KWARGS["frame_corrupt_per_sec"],
    retry: Optional[RetryPolicy] = None,
    seed: int = 0,
) -> FaultSweepResult:
    """Run the serving tier over the (fault rate, policy, replicas) grid.

    At each non-zero crash rate the plan is seeded from ``(seed, rate,
    policy-independent)`` — the *same* plan hits both policy arms, so the
    degrade/full comparison isolates the admission response, not the luck
    of the fault draw.
    """
    if not crash_rates or any(rate < 0 for rate in crash_rates):
        raise ValueError("crash_rates must be non-negative")
    unknown = [p for p in policies if p not in ("degrade", "full")]
    if unknown:
        raise ValueError(f"unknown fault policies {unknown}")
    feature_dim = 3 * board_size * board_size
    retry = retry if retry is not None else RetryPolicy(jitter="decorrelated")

    def make_network():
        return PolicyValueNet(board_size, hidden=hidden,
                              rng=np.random.default_rng(seed))

    capacity = estimate_capacity_rows_per_sec(
        make_network, feature_dim=feature_dim, max_batch=max_batch, seed=seed)
    points: List[FaultSweepPoint] = []
    for crash_rate in crash_rates:
        for num_replicas in replica_counts:
            rate = load_multiplier * capacity * num_replicas
            plan = None
            if crash_rate > 0.0:
                # Mix rate into the plan seed with a large odd stride so
                # neighbouring (seed, rate) cells get decorrelated draws.
                plan = FaultPlan.seeded(
                    (seed + 1) * 100_003 + int(round(crash_rate)),
                    horizon_us=horizon_us,
                    num_replicas=num_replicas,
                    crash_rate_per_sec=crash_rate,
                    mean_downtime_us=mean_downtime_us,
                    frame_loss_per_sec=frame_loss_per_sec,
                    frame_corrupt_per_sec=frame_corrupt_per_sec)
            for policy in policies:
                server = InferenceServer(
                    make_network(),
                    max_batch=max_batch,
                    queue_capacity=queue_capacity,
                    overload="shed-newest",
                    rate_limit_per_sec=None,
                    rate_burst=rate_burst,
                    flush_policy="timeout",
                    flush_timeout_us=flush_timeout_us,
                    num_replicas=num_replicas,
                    seed=seed,
                    name=f"fault_{policy}",
                    keep_decision_log=False,
                    fault_plan=plan,
                    degraded_admission=policy == "degrade")
                loadgen = LoadGenerator(PoissonProcess(rate), num_clients,
                                        feature_dim=feature_dim, retry=retry,
                                        request_deadline_us=request_deadline_us,
                                        seed=seed)
                result = run_serving(server, loadgen, horizon_us)
                label = f"f{crash_rate:g}/{policy}/r{num_replicas}"
                points.append(FaultSweepPoint(
                    crash_rate_per_sec=crash_rate, policy=policy,
                    num_replicas=num_replicas, rate_per_sec=rate,
                    plan_events=0 if plan is None else len(plan.events),
                    slo=build_slo_report(result, label=label)))
    return FaultSweepResult(
        board_size=board_size, max_batch=max_batch,
        queue_capacity=queue_capacity, num_clients=num_clients,
        request_deadline_us=request_deadline_us, horizon_us=horizon_us,
        load_multiplier=load_multiplier, capacity_rows_per_sec=capacity,
        points=points)
