"""Batch-size sweep: batched cross-worker inference vs per-leaf evaluation.

Runs the Minigo parallel self-play pool once per ``leaf_batch`` value with
leaf evaluation routed through the shared :class:`InferenceService`, and
reports, for each point, the number of batched engine calls, self-play
throughput, and the CPU/GPU overlap profile of the collection phase.  At
``leaf_batch=1`` the batched service reproduces the legacy per-leaf game
records exactly, so that point doubles as the baseline: every reduction in
engine calls at larger batches is attributable to coalescing alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..minigo.workers import SelfPlayPool
from ..profiler.events import merge_traces
from ..profiler.overlap import (
    RESOURCE_CPU,
    RESOURCE_CPU_GPU,
    RESOURCE_GPU,
    compute_overlap,
)

#: The sweep the paper-style report covers.
DEFAULT_LEAF_BATCHES = (1, 4, 16, 64)


@dataclass
class BatchSweepPoint:
    """One leaf_batch setting's measurements."""

    leaf_batch: int
    engine_calls: int        #: batched network calls issued by the service
    rows: int                #: leaf positions evaluated
    moves: int               #: self-play moves generated across the pool
    span_us: float           #: parallel collection span (slowest worker)
    cpu_only_us: float
    gpu_only_us: float
    cpu_gpu_us: float

    @property
    def mean_batch_rows(self) -> float:
        return self.rows / self.engine_calls if self.engine_calls else 0.0

    @property
    def moves_per_sec(self) -> float:
        return self.moves / (self.span_us / 1e6) if self.span_us > 0 else 0.0

    @property
    def overlap_fraction(self) -> float:
        """Fraction of tracked time where CPU and GPU were busy together."""
        total = self.cpu_only_us + self.gpu_only_us + self.cpu_gpu_us
        return self.cpu_gpu_us / total if total > 0 else 0.0


@dataclass
class BatchSweepResult:
    points: List[BatchSweepPoint]

    def point(self, leaf_batch: int) -> BatchSweepPoint:
        for point in self.points:
            if point.leaf_batch == leaf_batch:
                return point
        raise KeyError(f"no sweep point for leaf_batch={leaf_batch}")

    @property
    def baseline(self) -> BatchSweepPoint:
        """The smallest-batch point of the sweep (leaf_batch=1 = per-leaf)."""
        return min(self.points, key=lambda point: point.leaf_batch)

    def call_reduction(self, leaf_batch: int) -> float:
        """How many times fewer engine calls than the per-leaf baseline,
        normalised per evaluated row (trajectories differ across batches)."""
        base = self.baseline
        point = self.point(leaf_batch)
        base_calls_per_row = base.engine_calls / max(base.rows, 1)
        point_calls_per_row = point.engine_calls / max(point.rows, 1)
        return base_calls_per_row / point_calls_per_row if point_calls_per_row else 0.0

    def speedup(self, leaf_batch: int) -> float:
        base = self.baseline
        return base.span_us / self.point(leaf_batch).span_us if self.point(leaf_batch).span_us else 0.0

    def report(self) -> str:
        header = (f"{'leaf_batch':>10} {'engine calls':>12} {'mean batch':>10} "
                  f"{'calls/row x':>11} {'span (s)':>9} {'moves/s':>8} "
                  f"{'CPU-only %':>10} {'CPU+GPU %':>9} {'GPU-only %':>10}")
        lines = ["Batch-size sweep: batched cross-worker inference (shared engine)", header]
        for point in self.points:
            total = point.cpu_only_us + point.gpu_only_us + point.cpu_gpu_us
            pct = (lambda v: 100.0 * v / total if total > 0 else 0.0)
            lines.append(
                f"{point.leaf_batch:>10d} {point.engine_calls:>12d} {point.mean_batch_rows:>10.2f} "
                f"{self.call_reduction(point.leaf_batch):>10.1f}x {point.span_us / 1e6:>9.3f} "
                f"{point.moves_per_sec:>8.1f} {pct(point.cpu_only_us):>10.1f} "
                f"{pct(point.cpu_gpu_us):>9.1f} {pct(point.gpu_only_us):>10.1f}")
        best = max(self.points, key=lambda point: point.leaf_batch)
        base = self.baseline
        base_label = ("per-leaf evaluation" if base.leaf_batch == 1
                      else f"the leaf_batch={base.leaf_batch} baseline")
        lines.append(
            f"largest batch ({best.leaf_batch}): {self.call_reduction(best.leaf_batch):.1f}x fewer "
            f"engine calls per row, {self.speedup(best.leaf_batch):.2f}x collection speedup "
            f"vs {base_label}")
        return "\n".join(lines)


def run_batch_sweep(
    leaf_batches: Sequence[int] = DEFAULT_LEAF_BATCHES,
    *,
    num_workers: int = 4,
    board_size: int = 5,
    num_simulations: int = 16,
    games_per_worker: int = 1,
    max_moves: Optional[int] = 10,
    hidden: tuple = (32, 32),
    inference_max_batch: int = 64,
    seed: int = 0,
) -> BatchSweepResult:
    """Run the pool once per leaf_batch value and collect the sweep table."""
    if not leaf_batches:
        raise ValueError("leaf_batches must not be empty")
    points: List[BatchSweepPoint] = []
    for leaf_batch in leaf_batches:
        pool = SelfPlayPool(
            num_workers,
            board_size=board_size,
            num_simulations=num_simulations,
            games_per_worker=games_per_worker,
            max_moves=max_moves,
            hidden=hidden,
            profile=True,
            seed=seed,
            batched_inference=True,
            leaf_batch=leaf_batch,
            inference_max_batch=inference_max_batch,
        )
        pool.run()
        stats = pool.inference_service.stats
        overlap = compute_overlap(merge_traces(run.trace for run in pool.runs))
        points.append(BatchSweepPoint(
            leaf_batch=leaf_batch,
            engine_calls=stats.engine_calls,
            rows=stats.rows,
            moves=sum(run.result.moves for run in pool.runs),
            span_us=pool.collection_span_us(),
            cpu_only_us=overlap.resource_time_us(RESOURCE_CPU, include_untracked=False),
            gpu_only_us=overlap.resource_time_us(RESOURCE_GPU, include_untracked=False),
            cpu_gpu_us=overlap.resource_time_us(RESOURCE_CPU_GPU, include_untracked=False),
        ))
    return BatchSweepResult(points=points)
