"""``rls-experiment``: regenerate a table or figure of the paper from the command line.

Examples::

    rls-experiment table1
    rls-experiment fig4 --algo TD3 --timesteps 150
    rls-experiment fig5
    rls-experiment fig8
    rls-experiment fig11a --timesteps 100
    rls-experiment batchsweep --leaf-batches 1,4,16,64
    rls-experiment schedsweep --workers 8 --leaf-batches 1,4,8
    rls-experiment schedsweep --flush-policy timeout --timeout-us 500
    rls-experiment schedsweep --replicas 2 --routing least-loaded
    rls-experiment replicasweep --replicas 1,2,4 --workers 8
    rls-experiment fig8 --scheduler event --replicas 2
    rls-experiment servesweep --rates 0.5,2.0 --clients 256 --replicas 1,2
    rls-experiment servesweep --arrival bursty --overloads shed-newest,block
    rls-experiment servesweep --quick   # CI smoke: small trace, fast
    rls-experiment zoosweep --sims Pong,Hopper --algos DQN,PPO
    rls-experiment zoosweep --worker-counts 4,8 --replicas 1,2
    rls-experiment zoosweep --quick     # CI smoke: 2 sims, 1 worker count
    rls-experiment cachesweep --worker-counts 4,8 --replicas 1,2
    rls-experiment cachesweep --quick   # CI smoke: 1 cell, cache off vs on
    rls-experiment faultsweep --fault-rates 0,150 --replicas 4
    rls-experiment faultsweep --quick   # CI smoke: fault-free vs one faulty cell
    rls-experiment findings          # run everything and check F.1-F.12
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence


def _positive_int_list(noun: str):
    """argparse type: a comma-separated list of positive integers."""
    def parse(text: str) -> tuple:
        try:
            values = tuple(int(value) for value in text.split(","))
        except ValueError:
            raise argparse.ArgumentTypeError(f"expected comma-separated integers, got {text!r}")
        if not values or any(value <= 0 for value in values):
            raise argparse.ArgumentTypeError(f"{noun} must be positive, got {text!r}")
        return values
    return parse


def _positive_float_list(noun: str):
    """argparse type: a comma-separated list of positive floats."""
    def parse(text: str) -> tuple:
        try:
            values = tuple(float(value) for value in text.split(","))
        except ValueError:
            raise argparse.ArgumentTypeError(f"expected comma-separated numbers, got {text!r}")
        if not values or any(value <= 0 for value in values):
            raise argparse.ArgumentTypeError(f"{noun} must be positive, got {text!r}")
        return values
    return parse


def _nonnegative_float_list(noun: str):
    """argparse type: a comma-separated list of non-negative floats."""
    def parse(text: str) -> tuple:
        try:
            values = tuple(float(value) for value in text.split(","))
        except ValueError:
            raise argparse.ArgumentTypeError(f"expected comma-separated numbers, got {text!r}")
        if not values or any(value < 0 for value in values):
            raise argparse.ArgumentTypeError(f"{noun} must be non-negative, got {text!r}")
        return values
    return parse


_leaf_batch_list = _positive_int_list("leaf batch sizes")
_replica_list = _positive_int_list("replica counts")
_rate_list = _positive_float_list("rate multipliers")
_fault_rate_list = _nonnegative_float_list("fault rates")


def _name_list(text: str) -> tuple:
    values = tuple(value.strip() for value in text.split(",") if value.strip())
    if not values:
        raise argparse.ArgumentTypeError(f"expected comma-separated names, got {text!r}")
    return values


def _overload_list(text: str) -> tuple:
    values = tuple(value.strip() for value in text.split(","))
    allowed = ("none", "block", "shed-newest", "shed-oldest", "deadline-drop")
    bad = [value for value in values if value not in allowed]
    if bad:
        raise argparse.ArgumentTypeError(
            f"unknown overload policies {bad}; choose from {', '.join(allowed)}")
    return values


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="rls-experiment", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("experiment",
                        choices=["table1", "fig4", "fig5", "fig7", "fig8", "fig11a", "fig11b",
                                 "batchsweep", "schedsweep", "replicasweep", "servesweep",
                                 "zoosweep", "cachesweep", "faultsweep", "findings"])
    parser.add_argument("--algo", default="TD3", help="algorithm for fig4 (TD3 or DDPG)")
    parser.add_argument("--timesteps", type=int, default=None, help="steps per workload (default: experiment-specific)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--leaf-batches", type=_leaf_batch_list, default=None,
                        help="comma-separated leaf batch sizes for batchsweep/schedsweep "
                             "(defaults: 1,4,16,64 / 1,4,8)")
    parser.add_argument("--workers", type=int, default=None,
                        help="self-play workers for schedsweep/replicasweep (default: 8 / 4,8)")
    parser.add_argument("--replicas", type=_replica_list, default=None,
                        help="inference replicas: a single count for fig8/schedsweep, a "
                             "comma-separated list for replicasweep (default: 1 / 1,2,4)")
    parser.add_argument("--routing", choices=["round-robin", "least-loaded", "sticky"],
                        default=None,
                        help="replica routing policy for fig8/schedsweep (replicasweep "
                             "sweeps every policy unless one is given)")
    parser.add_argument("--scheduler", choices=["sequential", "event"], default=None,
                        help="self-play scheduler for fig8 (event implies batched inference)")
    parser.add_argument("--flush-policy", choices=["max-batch", "timeout", "unbatched"],
                        default=None,
                        help="how the event-driven scheduler departs inference batches "
                             "(fig8/schedsweep default: max-batch; replicasweep default: "
                             "timeout 50us)")
    parser.add_argument("--timeout-us", type=float, default=None,
                        help="partial-batch deadline in virtual us (flush policy 'timeout')")
    parser.add_argument("--rates", type=_rate_list, default=None,
                        help="servesweep arrival rates as comma-separated multiples of "
                             "measured capacity (default: 0.5,1.0,2.0)")
    parser.add_argument("--clients", type=int, default=None,
                        help="servesweep synthetic client count (default: 256)")
    parser.add_argument("--arrival", choices=["poisson", "bursty"], default=None,
                        help="servesweep arrival process (default: poisson)")
    parser.add_argument("--overloads", type=_overload_list, default=None,
                        help="servesweep overload policies, comma-separated from "
                             "none,block,shed-newest,shed-oldest,deadline-drop "
                             "(default: all)")
    parser.add_argument("--sims", type=_name_list, default=None,
                        help="zoosweep simulators, comma-separated registry names "
                             "(default: Pong,Hopper,Walker2D,HalfCheetah)")
    parser.add_argument("--algos", type=_name_list, default=None,
                        help="zoosweep algorithm families, comma-separated from "
                             "DQN,PPO,DDPG (default: all)")
    parser.add_argument("--worker-counts", type=_positive_int_list("worker counts"),
                        default=None,
                        help="zoosweep worker-count grid, comma-separated "
                             "(default: 4,8)")
    parser.add_argument("--trace-dir", default=None,
                        help="zoosweep: stream every batched cell's profiler trace "
                             "into per-cell TraceDB directories under this path")
    parser.add_argument("--eval-games", type=_positive_int_list("evaluation game counts"),
                        default=None,
                        help="cachesweep: evaluation-round sizes, comma-separated "
                             "(default: 2,4)")
    parser.add_argument("--fault-rates", type=_fault_rate_list, default=None,
                        help="faultsweep replica crash rates per virtual second, "
                             "comma-separated; 0 is the fault-free control "
                             "(default: 0,50,150)")
    parser.add_argument("--fault-policies", type=_name_list, default=None,
                        help="faultsweep admission arms, comma-separated from "
                             "degrade,full (default: both)")
    parser.add_argument("--quick", action="store_true",
                        help="servesweep/zoosweep/cachesweep/faultsweep smoke "
                             "mode: a small grid (the CI configuration)")
    parser.add_argument("--out", default=None,
                        help="servesweep/zoosweep/cachesweep/faultsweep: also "
                             "write the report to this path (default: "
                             "results/serve_sweep.txt / results/zoo_sweep.txt / "
                             "results/cache_sweep.txt / results/fault_sweep.txt)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment in ("fig8", "schedsweep") and args.replicas and len(args.replicas) > 1:
        parser.error(f"{args.experiment} takes a single --replicas count "
                     "(a list is only meaningful for replicasweep)")
    if args.experiment == "replicasweep" and args.leaf_batches and len(args.leaf_batches) > 1:
        parser.error("replicasweep takes a single --leaf-batches value "
                     "(a list is only meaningful for batchsweep/schedsweep)")
    from . import (
        DEFAULT_LEAF_BATCHES, run_batch_sweep,
        DEFAULT_SCHED_LEAF_BATCHES, DEFAULT_SCHED_WORKERS, run_sched_sweep,
        DEFAULT_REPLICA_COUNTS, DEFAULT_REPLICA_ROUTINGS, DEFAULT_REPLICA_WORKERS,
        run_replica_sweep,
        run_serve_sweep,
        run_zoo_sweep,
        run_fig4, run_fig5, run_fig7, run_fig8, run_fig11a, run_fig11b, run_table1, table1, findings,
    )
    from .common import DEFAULT_TIMESTEPS
    from .fig11 import DEFAULT_FIG11_TIMESTEPS

    steps = args.timesteps if args.timesteps is not None else DEFAULT_TIMESTEPS
    fig11_steps = args.timesteps if args.timesteps is not None else DEFAULT_FIG11_TIMESTEPS

    if args.experiment == "table1":
        print(table1.report(run_table1()))
    elif args.experiment == "fig4":
        print(run_fig4(args.algo, timesteps=steps, seed=args.seed).report())
    elif args.experiment == "fig5":
        print(run_fig5(timesteps=steps, seed=args.seed).report())
    elif args.experiment == "fig7":
        print(run_fig7(timesteps=steps, seed=args.seed).report())
    elif args.experiment == "fig8":
        print(run_fig8(scheduler=args.scheduler, flush_policy=args.flush_policy,
                       flush_timeout_us=args.timeout_us,
                       num_replicas=args.replicas[0] if args.replicas else None,
                       routing=args.routing).report())  # flush_policy=None keeps the config default
    elif args.experiment == "fig11a":
        print(run_fig11a(timesteps=fig11_steps, seed=args.seed).report())
    elif args.experiment == "fig11b":
        print(run_fig11b(timesteps=fig11_steps, seed=args.seed).report())
    elif args.experiment == "batchsweep":
        batches = args.leaf_batches if args.leaf_batches is not None else DEFAULT_LEAF_BATCHES
        print(run_batch_sweep(batches, seed=args.seed).report())
    elif args.experiment == "schedsweep":
        batches = args.leaf_batches if args.leaf_batches is not None else DEFAULT_SCHED_LEAF_BATCHES
        workers = args.workers if args.workers is not None else DEFAULT_SCHED_WORKERS
        print(run_sched_sweep(batches, num_workers=workers, seed=args.seed,
                              num_replicas=args.replicas[0] if args.replicas else 1,
                              routing=args.routing or "round-robin",
                              flush_policy=args.flush_policy or "max-batch",
                              flush_timeout_us=args.timeout_us).report())
    elif args.experiment == "replicasweep":
        replicas = args.replicas if args.replicas is not None else DEFAULT_REPLICA_COUNTS
        worker_counts = (args.workers,) if args.workers is not None else DEFAULT_REPLICA_WORKERS
        routings = (args.routing,) if args.routing is not None else DEFAULT_REPLICA_ROUTINGS
        sweep_kwargs = {}
        if args.leaf_batches is not None:
            sweep_kwargs["leaf_batch"] = args.leaf_batches[0]
        if args.flush_policy is not None:
            sweep_kwargs["flush_policy"] = args.flush_policy
            if args.flush_policy != "timeout":
                sweep_kwargs["flush_timeout_us"] = None
        if args.timeout_us is not None:
            sweep_kwargs["flush_timeout_us"] = args.timeout_us
        print(run_replica_sweep(replicas, worker_counts=worker_counts,
                                routings=routings, seed=args.seed,
                                **sweep_kwargs).report())
    elif args.experiment == "servesweep":
        sweep_kwargs = {}
        if args.rates is not None:
            sweep_kwargs["multipliers"] = args.rates
        if args.overloads is not None:
            sweep_kwargs["overloads"] = args.overloads
        if args.replicas is not None:
            sweep_kwargs["replica_counts"] = args.replicas
        if args.clients is not None:
            sweep_kwargs["num_clients"] = args.clients
        if args.arrival is not None:
            sweep_kwargs["arrival"] = args.arrival
        if args.quick:
            # CI smoke: a 2-point grid over a short trace, small client fleet.
            sweep_kwargs.setdefault("multipliers", (0.5, 2.0))
            sweep_kwargs.setdefault("overloads", ("none", "shed-newest"))
            sweep_kwargs.setdefault("replica_counts", (1,))
            sweep_kwargs.setdefault("num_clients", 64)
            sweep_kwargs["horizon_us"] = 10_000.0
        result = run_serve_sweep(seed=args.seed, **sweep_kwargs)
        text = result.report()
        print(text)
        import pathlib
        out = pathlib.Path(args.out) if args.out else pathlib.Path("results/serve_sweep.txt")
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + "\n")
    elif args.experiment == "zoosweep":
        from .zoosweep import DEFAULT_ZOO_STEPS
        sweep_kwargs = {}
        if args.sims is not None:
            sweep_kwargs["sims"] = args.sims
        if args.algos is not None:
            sweep_kwargs["algorithms"] = args.algos
        if args.worker_counts is not None:
            sweep_kwargs["worker_counts"] = args.worker_counts
        if args.replicas is not None:
            sweep_kwargs["replica_counts"] = args.replicas
        if args.quick:
            # CI smoke: two sims, one worker count, single replica.
            sweep_kwargs.setdefault("sims", ("Pong", "Hopper"))
            sweep_kwargs.setdefault("worker_counts", (4,))
            sweep_kwargs.setdefault("replica_counts", (1,))
            sweep_kwargs.setdefault("steps_per_worker", 6)
        quick_steps = sweep_kwargs.pop("steps_per_worker", DEFAULT_ZOO_STEPS)
        steps_per_worker = args.timesteps if args.timesteps is not None else quick_steps
        result = run_zoo_sweep(seed=args.seed, steps_per_worker=steps_per_worker,
                               trace_dir=args.trace_dir, **sweep_kwargs)
        text = result.report()
        print(text)
        import pathlib
        out = pathlib.Path(args.out) if args.out else pathlib.Path("results/zoo_sweep.txt")
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + "\n")
    elif args.experiment == "cachesweep":
        from . import run_cache_sweep
        sweep_kwargs = {}
        if args.worker_counts is not None:
            sweep_kwargs["worker_counts"] = args.worker_counts
        if args.replicas is not None:
            sweep_kwargs["replica_counts"] = args.replicas
        if args.eval_games is not None:
            sweep_kwargs["evaluation_games"] = args.eval_games
        if args.quick:
            # CI smoke: one small cell, still cache off vs on with the win
            # parity and reduction columns.
            sweep_kwargs.setdefault("worker_counts", (2,))
            sweep_kwargs.setdefault("replica_counts", (1,))
            sweep_kwargs.setdefault("evaluation_games", (2,))
            sweep_kwargs.setdefault("max_moves", 4)
        result = run_cache_sweep(seed=args.seed, **sweep_kwargs)
        text = result.report()
        print(text)
        import pathlib
        out = pathlib.Path(args.out) if args.out else pathlib.Path("results/cache_sweep.txt")
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + "\n")
    elif args.experiment == "faultsweep":
        from . import run_fault_sweep
        sweep_kwargs = {}
        if args.fault_rates is not None:
            sweep_kwargs["crash_rates"] = args.fault_rates
        if args.fault_policies is not None:
            sweep_kwargs["policies"] = args.fault_policies
        if args.replicas is not None:
            sweep_kwargs["replica_counts"] = args.replicas
        if args.clients is not None:
            sweep_kwargs["num_clients"] = args.clients
        if args.quick:
            # CI smoke: fault-free control vs one faulty cell, both arms,
            # over a short trace with a small client fleet.
            sweep_kwargs.setdefault("crash_rates", (0.0, 150.0))
            sweep_kwargs.setdefault("replica_counts", (4,))
            sweep_kwargs.setdefault("num_clients", 64)
            sweep_kwargs["horizon_us"] = 15_000.0
        crash_rates = sweep_kwargs.pop("crash_rates", None)
        if crash_rates is not None:
            result = run_fault_sweep(crash_rates, seed=args.seed, **sweep_kwargs)
        else:
            result = run_fault_sweep(seed=args.seed, **sweep_kwargs)
        text = result.report()
        print(text)
        import pathlib
        out = pathlib.Path(args.out) if args.out else pathlib.Path("results/fault_sweep.txt")
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + "\n")
    elif args.experiment == "findings":
        fig4_td3 = run_fig4("TD3", timesteps=steps, seed=args.seed)
        fig4_ddpg = run_fig4("DDPG", timesteps=steps, seed=args.seed)
        fig5 = run_fig5(timesteps=steps, seed=args.seed)
        fig7 = run_fig7(timesteps=steps, seed=args.seed)
        fig8 = run_fig8()
        checks = findings.check_all(fig4_td3=fig4_td3, fig4_ddpg=fig4_ddpg, fig5=fig5,
                                    fig7=fig7, fig8=fig8)
        for finding in checks.values():
            print(finding)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
