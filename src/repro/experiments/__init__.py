"""Experiment harness: regenerates every table and figure of the paper's evaluation."""

from .common import (
    DEFAULT_TIMESTEPS,
    WorkloadRun,
    WorkloadSpec,
    calibrate_workload,
    calibration_runner,
    run_workload,
)
from .batchsweep import (
    DEFAULT_LEAF_BATCHES,
    BatchSweepPoint,
    BatchSweepResult,
    run_batch_sweep,
)
from .schedsweep import (
    DEFAULT_SCHED_LEAF_BATCHES,
    DEFAULT_SCHED_WORKERS,
    SchedSweepPoint,
    SchedSweepResult,
    run_sched_sweep,
)
from .replicasweep import (
    DEFAULT_REPLICA_COUNTS,
    DEFAULT_REPLICA_ROUTINGS,
    DEFAULT_REPLICA_WORKERS,
    ReplicaSweepPoint,
    ReplicaSweepResult,
    inference_bound_cost_config,
    run_replica_sweep,
)
from .servesweep import (
    DEFAULT_SERVE_KWARGS,
    DEFAULT_SERVE_MULTIPLIERS,
    DEFAULT_SERVE_OVERLOADS,
    DEFAULT_SERVE_REPLICAS,
    SERVE_ARRIVALS,
    ServeSweepPoint,
    ServeSweepResult,
    run_serve_sweep,
)
from .fig4 import FRAMEWORKS_BY_ALGO, Fig4Result, run_fig4
from .fig5 import SURVEY_ALGORITHMS, Fig5Result, run_fig5
from .fig7 import SURVEY_SIMULATORS, Fig7Result, run_fig7
from .fig8 import DEFAULT_MINIGO_CONFIG, Fig8Result, run_fig8
from .fig11 import (
    DEFAULT_FIG11_TIMESTEPS,
    FIG11A_ALGORITHMS,
    FIG11B_SIMULATORS,
    CorrectionValidation,
    Fig11Result,
    run_fig11a,
    run_fig11b,
    validate_workload,
)
from .findings import Finding, check_all
from .table1 import Table1Row, run_table1
from . import findings, table1

__all__ = [
    "DEFAULT_TIMESTEPS",
    "WorkloadRun",
    "WorkloadSpec",
    "calibrate_workload",
    "calibration_runner",
    "run_workload",
    "DEFAULT_LEAF_BATCHES",
    "BatchSweepPoint",
    "BatchSweepResult",
    "run_batch_sweep",
    "DEFAULT_SCHED_LEAF_BATCHES",
    "DEFAULT_SCHED_WORKERS",
    "SchedSweepPoint",
    "SchedSweepResult",
    "run_sched_sweep",
    "DEFAULT_REPLICA_COUNTS",
    "DEFAULT_REPLICA_ROUTINGS",
    "DEFAULT_REPLICA_WORKERS",
    "ReplicaSweepPoint",
    "ReplicaSweepResult",
    "inference_bound_cost_config",
    "run_replica_sweep",
    "DEFAULT_SERVE_KWARGS",
    "DEFAULT_SERVE_MULTIPLIERS",
    "DEFAULT_SERVE_OVERLOADS",
    "DEFAULT_SERVE_REPLICAS",
    "SERVE_ARRIVALS",
    "ServeSweepPoint",
    "ServeSweepResult",
    "run_serve_sweep",
    "FRAMEWORKS_BY_ALGO",
    "Fig4Result",
    "run_fig4",
    "SURVEY_ALGORITHMS",
    "Fig5Result",
    "run_fig5",
    "SURVEY_SIMULATORS",
    "Fig7Result",
    "run_fig7",
    "DEFAULT_MINIGO_CONFIG",
    "Fig8Result",
    "run_fig8",
    "DEFAULT_FIG11_TIMESTEPS",
    "FIG11A_ALGORITHMS",
    "FIG11B_SIMULATORS",
    "CorrectionValidation",
    "Fig11Result",
    "run_fig11a",
    "run_fig11b",
    "validate_workload",
    "Finding",
    "check_all",
    "Table1Row",
    "run_table1",
    "findings",
    "table1",
]
