"""Figure 11 (Appendix C.3): validation of profiling-overhead correction.

For each workload we

1. run the full calibration procedure (delta calibration for interception and
   annotations, difference-of-average calibration for CUPTI),
2. run the workload once *uninstrumented* and once with *full* RL-Scope
   book-keeping, and
3. compare the overhead-corrected training time against the uninstrumented
   training time.

The paper reports a correction bias within +/-16 % across all algorithm and
simulator choices, down from up to 90 % uncorrected inflation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..hw.costmodel import CostModelConfig
from ..profiler import ProfilerConfig, report as report_mod
from ..profiler.calibration import CalibrationResult
from ..profiler.correction import corrected_total_us
from .common import WorkloadSpec, calibrate_workload, run_workload

#: Figure 11a: algorithm sweep on Walker2D.  Figure 11b: simulator sweep with PPO2.
FIG11A_ALGORITHMS = ["PPO2", "A2C", "SAC", "DDPG"]
FIG11B_SIMULATORS = ["Hopper", "Ant", "HalfCheetah", "Pong"]

#: Overhead correction needs fewer steps than the breakdown figures to be stable.
DEFAULT_FIG11_TIMESTEPS = 120


@dataclass
class CorrectionValidation:
    """Corrected vs uninstrumented totals for one workload."""

    label: str
    uninstrumented_sec: float
    instrumented_sec: float
    corrected_sec: float
    calibration: CalibrationResult

    @property
    def bias_percent(self) -> float:
        """Signed deviation of the corrected time from the uninstrumented time."""
        if self.uninstrumented_sec == 0:
            return 0.0
        return 100.0 * (self.corrected_sec - self.uninstrumented_sec) / self.uninstrumented_sec

    @property
    def uncorrected_inflation_percent(self) -> float:
        """How much full profiling inflated the runtime before correction."""
        if self.uninstrumented_sec == 0:
            return 0.0
        return 100.0 * (self.instrumented_sec - self.uninstrumented_sec) / self.uninstrumented_sec


@dataclass
class Fig11Result:
    validations: Dict[str, CorrectionValidation] = field(default_factory=dict)

    def max_abs_bias_percent(self) -> float:
        return max((abs(v.bias_percent) for v in self.validations.values()), default=0.0)

    def report(self) -> str:
        rows = {
            label: {
                "instrumented_sec": v.instrumented_sec,
                "corrected_sec": v.corrected_sec,
                "uninstrumented_sec": v.uninstrumented_sec,
                "bias_percent": v.bias_percent,
            }
            for label, v in self.validations.items()
        }
        lines = [
            "Figure 11: overhead-correction validation",
            report_mod.correction_table(rows),
            "",
            f"max |bias|: {self.max_abs_bias_percent():.1f}%  (paper: within +/-16%)",
        ]
        return "\n".join(lines)


def validate_workload(spec: WorkloadSpec, *, cost_config: Optional[CostModelConfig] = None,
                      calibration: Optional[CalibrationResult] = None) -> CorrectionValidation:
    """Calibrate, then compare corrected vs uninstrumented training time for one workload."""
    if calibration is None:
        calibration = calibrate_workload(spec, cost_config=cost_config)
    uninstrumented = run_workload(spec, profiler_config=ProfilerConfig.uninstrumented(),
                                  cost_config=cost_config)
    instrumented = run_workload(spec, profiler_config=ProfilerConfig.full(),
                                cost_config=cost_config)
    corrected_us = corrected_total_us(instrumented.trace, calibration,
                                      total_us=instrumented.total_time_us)
    return CorrectionValidation(
        label=spec.label,
        uninstrumented_sec=uninstrumented.total_time_us / 1e6,
        instrumented_sec=instrumented.total_time_us / 1e6,
        corrected_sec=corrected_us / 1e6,
        calibration=calibration,
    )


def run_fig11a(*, algorithms: Optional[List[str]] = None, simulator: str = "Walker2D",
               timesteps: int = DEFAULT_FIG11_TIMESTEPS, seed: int = 0,
               cost_config: Optional[CostModelConfig] = None) -> Fig11Result:
    """Overhead-correction validation across RL algorithms (Figure 11a)."""
    algorithms = algorithms if algorithms is not None else list(FIG11A_ALGORITHMS)
    result = Fig11Result()
    for algo in algorithms:
        spec = WorkloadSpec(algo=algo, simulator=simulator, total_timesteps=timesteps, seed=seed)
        result.validations[algo] = validate_workload(spec, cost_config=cost_config)
    return result


def run_fig11b(*, simulators: Optional[List[str]] = None, algo: str = "PPO2",
               timesteps: int = DEFAULT_FIG11_TIMESTEPS, seed: int = 0,
               cost_config: Optional[CostModelConfig] = None) -> Fig11Result:
    """Overhead-correction validation across simulators (Figure 11b)."""
    simulators = simulators if simulators is not None else list(FIG11B_SIMULATORS)
    result = Fig11Result()
    for simulator in simulators:
        spec = WorkloadSpec(algo=algo, simulator=simulator, total_timesteps=timesteps, seed=seed)
        result.validations[simulator] = validate_workload(spec, cost_config=cost_config)
    return result
