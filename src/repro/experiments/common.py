"""Shared experiment infrastructure: run one profiled RL workload end to end.

Every figure of the paper is regenerated from one or more *workload runs*: a
(RL algorithm, simulator, framework configuration) triple trained for a fixed
number of timesteps under a profiler configuration, followed by offline
analysis.  This module provides that runner plus calibration helpers.

Scale note: the paper trains for hundreds of thousands of simulator steps on
real hardware; the reproduction runs a few hundred virtual-time steps per
workload.  All reported quantities are either fractions/ratios (which are
step-count independent) or virtual seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from ..hw.costmodel import CostModelConfig
from ..profiler.analysis import WorkloadAnalysis, analyze, analyze_db
from ..profiler.api import Profiler, ProfilerConfig
from ..profiler.calibration import CalibrationResult, CalibrationRun, calibrate
from ..profiler.events import EventTrace
from ..rl import FrameworkAdapter, FrameworkSpec, STABLE_BASELINES, TrainResult, default_config, make_algorithm
from ..sim import make as make_env
from ..system import System

#: Default number of simulated environment steps per experiment workload.
DEFAULT_TIMESTEPS = 220


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload of the evaluation: algorithm x simulator x framework."""

    algo: str
    simulator: str
    framework: FrameworkSpec = STABLE_BASELINES
    total_timesteps: int = DEFAULT_TIMESTEPS
    seed: int = 0
    config_overrides: Dict[str, Any] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return f"{self.algo}/{self.simulator}/{self.framework.label}"

    def scaled(self, factor: float) -> "WorkloadSpec":
        """Return a copy with the step budget scaled by ``factor``."""
        return replace(self, total_timesteps=max(int(self.total_timesteps * factor), 16))


@dataclass
class WorkloadRun:
    """A completed workload run plus its analysis."""

    spec: WorkloadSpec
    train_result: TrainResult
    trace: EventTrace
    analysis: WorkloadAnalysis
    total_time_us: float
    profiler_config: ProfilerConfig
    calibration: Optional[CalibrationResult] = None

    @property
    def total_time_sec(self) -> float:
        return self.total_time_us / 1e6


def run_workload(
    spec: WorkloadSpec,
    *,
    profiler_config: Optional[ProfilerConfig] = None,
    calibration: Optional[CalibrationResult] = None,
    cost_config: Optional[CostModelConfig] = None,
    use_ground_truth_calibration: bool = False,
    trace_dir: Optional[str] = None,
    streaming: bool = False,
) -> WorkloadRun:
    """Train one workload under the profiler and analyse its trace.

    ``use_ground_truth_calibration`` stands in for "reuse a calibration file
    computed earlier for this workload" (the paper computes calibration once
    per workload and reuses it); :mod:`repro.experiments.fig11` performs the
    real calibration procedure.

    With ``streaming=True`` (requires ``trace_dir``) the profiler flushes
    events incrementally into a :mod:`repro.tracedb` store and the analysis
    is computed from that store (shard-parallel overlap); flushes add zero
    virtual time, so every reported quantity is unchanged.
    """
    profiler_config = profiler_config if profiler_config is not None else ProfilerConfig.full()
    system = System.create(seed=spec.seed, config=cost_config)
    env = make_env(spec.simulator, system, seed=spec.seed)
    framework = FrameworkAdapter(system, spec.framework)
    profiler = Profiler(system, profiler_config, trace_dir=trace_dir, streaming=streaming)
    profiler.attach(engine=framework.engine, envs=[env])

    algo_config = default_config(spec.algo, **spec.config_overrides)
    agent = make_algorithm(spec.algo, env, framework, config=algo_config,
                           profiler=profiler, seed=spec.seed)
    train_result = agent.train(spec.total_timesteps)
    trace = profiler.finalize()

    if calibration is None and use_ground_truth_calibration:
        calibration = CalibrationResult.from_ground_truth(system.cost_model.config)
    if streaming:
        analysis = analyze_db(profiler.open_tracedb(), calibration=calibration,
                              iterations=spec.total_timesteps)
        trace = analysis.trace
    else:
        analysis = analyze(trace, calibration=calibration, iterations=spec.total_timesteps)
    return WorkloadRun(
        spec=spec,
        train_result=train_result,
        trace=trace,
        analysis=analysis,
        total_time_us=system.clock.now_us,
        profiler_config=profiler_config,
        calibration=calibration,
    )


def calibration_runner(spec: WorkloadSpec, *, cost_config: Optional[CostModelConfig] = None):
    """Build the workload runner that :func:`repro.profiler.calibration.calibrate` drives.

    Each invocation re-runs the same seeded workload under a different
    profiler configuration, exactly like the paper's calibration procedure.
    """

    def run(config: ProfilerConfig) -> CalibrationRun:
        outcome = run_workload(spec, profiler_config=config, cost_config=cost_config)
        return CalibrationRun(total_time_us=outcome.total_time_us, trace=outcome.trace)

    return run


def calibrate_workload(spec: WorkloadSpec, *, cost_config: Optional[CostModelConfig] = None) -> CalibrationResult:
    """Run the full calibration procedure (6 runs) for one workload."""
    return calibrate(calibration_runner(spec, cost_config=cost_config))
