"""Figure 8: Minigo scale-up workload — multi-process view and GPU utilization.

Runs one Minigo training round (parallel self-play, SGD updates, candidate
evaluation), then reports per-worker total time and GPU kernel time plus the
coarse-grained ``nvidia-smi`` utilization sampled over the parallel
data-collection window — the contrast behind finding F.11.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ..hw.nvidia_smi import UtilizationReport
from ..minigo import MinigoConfig, MinigoRoundResult, MinigoTraining
from ..profiler import (
    WorkerSummary,
    multi_process_summary,
    multi_process_summary_db,
    report as report_mod,
)

#: Reproduction-scale Minigo round: 16 workers (as in the paper), small board.
DEFAULT_MINIGO_CONFIG = MinigoConfig(
    num_workers=16,
    board_size=5,
    num_simulations=8,
    games_per_worker=1,
    sgd_steps=16,
    evaluation_games=2,
)


@dataclass
class Fig8Result:
    round_result: MinigoRoundResult
    summaries: List[WorkerSummary]
    utilization: UtilizationReport

    # ------------------------------------------------------------- reductions
    def selfplay_summaries(self) -> List[WorkerSummary]:
        return [s for s in self.summaries if s.worker.startswith("selfplay_worker")]

    def max_worker_time_sec(self) -> float:
        return max((s.total_time_sec for s in self.selfplay_summaries()), default=0.0)

    def max_worker_gpu_sec(self) -> float:
        return max((s.gpu_time_sec for s in self.selfplay_summaries()), default=0.0)

    def worker_gpu_fraction(self) -> float:
        """GPU kernel time as a fraction of total time, for the busiest worker."""
        summaries = self.selfplay_summaries()
        if not summaries:
            return 0.0
        busiest = max(summaries, key=lambda s: s.total_time_us)
        return busiest.gpu_time_us / busiest.total_time_us if busiest.total_time_us > 0 else 0.0

    def reported_utilization_pct(self) -> float:
        return self.utilization.reported_utilization_pct

    def true_busy_pct(self) -> float:
        return self.utilization.true_busy_pct

    def report(self) -> str:
        lines = [
            "Figure 8: Minigo multi-process view",
            report_mod.worker_table(self.summaries,
                                    utilization_pct=self.reported_utilization_pct(),
                                    true_busy_pct=self.true_busy_pct()),
            "",
            f"Candidate accepted: {self.round_result.candidate_accepted} "
            f"({self.round_result.candidate_wins}/{self.round_result.evaluation_games} evaluation games won)",
        ]
        return "\n".join(lines)


def run_fig8(
    config: Optional[MinigoConfig] = None,
    *,
    sample_period_us: float = 250_000.0,
    trace_dir: Optional[str] = None,
    scheduler: Optional[str] = None,
    leaf_batch: Optional[int] = None,
    flush_policy: Optional[str] = None,
    flush_timeout_us: Optional[float] = None,
    num_replicas: Optional[int] = None,
    routing: Optional[str] = None,
) -> Fig8Result:
    """Run one Minigo round and compute the Figure 8 quantities.

    With ``trace_dir`` the round streams every phase's trace into one
    TraceDB store (bounded memory during profiling) and the per-worker
    summaries are computed shard-parallel from that store — byte-identical
    to the in-memory path.  ``scheduler="event"`` switches the self-play
    phase to the event-driven virtual-time pool (implies batched inference,
    with ``leaf_batch`` leaves per MCTS wave, departing batches under
    ``flush_policy``/``flush_timeout_us``).  ``num_replicas``/``routing``
    shard the inference service across that many model replicas (each
    beyond the first modelling an additional inference GPU).
    """
    config = config if config is not None else DEFAULT_MINIGO_CONFIG
    if trace_dir is not None:
        config = replace(config, trace_dir=trace_dir)
    if scheduler is not None:
        config = replace(config, scheduler=scheduler,
                         batched_inference=config.batched_inference or scheduler == "event")
    if leaf_batch is not None:
        config = replace(config, leaf_batch=leaf_batch)
    if flush_policy is not None:
        config = replace(config, flush_policy=flush_policy)
    if flush_timeout_us is not None:
        config = replace(config, flush_timeout_us=flush_timeout_us)
    if num_replicas is not None:
        config = replace(config, num_replicas=num_replicas)
    if routing is not None:
        config = replace(config, routing=routing)
    if config.num_replicas > 1 and not config.batched_inference:
        # Without batched inference there is no service to shard — silently
        # returning single-device numbers would be misleading.
        raise ValueError("num_replicas > 1 requires batched inference; pass "
                         "scheduler='event' (or a config with batched_inference=True)")
    training = MinigoTraining(config)
    round_result = training.run_round()
    if round_result.trace_dir is not None:
        summaries = multi_process_summary_db(round_result.trace_dir)
    else:
        summaries = multi_process_summary(round_result.traces())
    # Choose a sample period no larger than ~1/20th of the collection window so
    # the utilization metric has enough samples at reproduction scale, while
    # never exceeding the paper's 0.25 s period.
    window = max((run.total_time_us for run in round_result.worker_runs), default=0.0)
    period = min(sample_period_us, max(window / 20.0, 1_000.0))
    utilization = round_result.utilization(sample_period_us=period)
    return Fig8Result(round_result=round_result, summaries=summaries, utilization=utilization)
