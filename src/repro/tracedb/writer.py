"""Streaming trace writing: bounded buffers, per-worker shards, one store.

The writer mirrors the paper's off-critical-path trace aggregation: the
profiler appends records as they are produced; whenever a shard's buffer
reaches ``chunk_events`` records it is flushed to a compressed chunk file
and the buffer is emptied, so at most one chunk of records is ever held in
memory per worker.  Flushing performs only host-side I/O — it never touches
the virtual clock, so streaming adds zero virtual time to the profiled
workload.

Several profilers (e.g. the 16 Minigo self-play workers plus the trainer
and evaluator) can share one :class:`StreamingTraceWriter`, each writing its
own shard into the same store directory; the index is merged incrementally
as shards close, and also survives separate writer instances pointed at the
same directory (read-modify-write index merging).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..profiler.events import CATEGORY_OPERATION, Event, EventTrace, OverheadMarker
from .format import (
    DEFAULT_CHUNK_EVENTS,
    ChunkMeta,
    ChunkPayload,
    WorkerEntry,
    build_meta,
    chunk_filename,
    read_index,
    write_chunk,
    write_index,
)


class ShardWriter:
    """One worker's shard: a bounded buffer flushed as compressed chunks."""

    def __init__(
        self,
        directory: Path,
        worker: str,
        *,
        chunk_events: int = DEFAULT_CHUNK_EVENTS,
        compress: bool = True,
        start_seq: int = 0,
        on_chunk: Optional[Callable[[ChunkMeta], None]] = None,
    ) -> None:
        if chunk_events <= 0:
            raise ValueError("chunk_events must be positive")
        self.directory = Path(directory)
        self.worker = worker
        self.chunk_events = chunk_events
        self.compress = compress
        self.seq = start_seq
        self.chunks: List[ChunkMeta] = []
        self.closed = False
        self._on_chunk = on_chunk
        self._buffer = ChunkPayload()
        # Totals across the whole shard (buffered + flushed).
        self.total_events = 0
        self.total_operations = 0
        self.total_markers = 0
        self.max_end_us = 0.0
        #: High-water mark of buffered records, for memory accounting.
        self.peak_buffered = 0

    # ------------------------------------------------------------------- add
    @property
    def buffered_records(self) -> int:
        buf = self._buffer
        return len(buf.events) + len(buf.operations) + len(buf.markers)

    def add_event(self, event: Event) -> None:
        self._buffer.events.append(event)
        self.total_events += 1
        self.max_end_us = max(self.max_end_us, event.end_us)
        self._after_add()

    def add_operation(self, operation: Event) -> None:
        self._buffer.operations.append(operation)
        self.total_operations += 1
        self.max_end_us = max(self.max_end_us, operation.end_us)
        self._after_add()

    def add_marker(self, marker: OverheadMarker) -> None:
        self._buffer.markers.append(marker)
        self.total_markers += 1
        self._after_add()

    def _after_add(self) -> None:
        if self.closed:
            raise RuntimeError(f"shard for worker {self.worker!r} is closed")
        buffered = self.buffered_records
        if buffered > self.peak_buffered:
            self.peak_buffered = buffered
        if buffered >= self.chunk_events:
            self.flush()

    # ----------------------------------------------------------------- flush
    def flush(self) -> Optional[ChunkMeta]:
        """Write the buffered records as one chunk; no-op on an empty buffer."""
        if self.buffered_records == 0:
            return None
        name = chunk_filename(self.worker, self.seq, compress=self.compress)
        write_chunk(self.directory / name, self._buffer, compress=self.compress)
        meta = build_meta(name, self.worker, self.seq, self._buffer)
        self.seq += 1
        self.chunks.append(meta)
        self._buffer = ChunkPayload()
        if self._on_chunk is not None:
            self._on_chunk(meta)
        return meta

    def close(self) -> List[ChunkMeta]:
        """Flush the remaining buffer and seal the shard."""
        if not self.closed:
            self.flush()
            self.closed = True
        return self.chunks


class StreamingTraceWriter:
    """A TraceDB store being written: many worker shards, one merged index."""

    def __init__(
        self,
        directory: str,
        *,
        chunk_events: int = DEFAULT_CHUNK_EVENTS,
        compress: bool = True,
    ) -> None:
        if chunk_events <= 0:
            raise ValueError("chunk_events must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.chunk_events = chunk_events
        self.compress = compress
        self.closed = False
        self._open_shards: Dict[str, ShardWriter] = {}
        self._metas: Dict[str, List[ChunkMeta]] = {}
        self._metadata: Dict[str, Dict[str, object]] = {}
        self._next_seq: Dict[str, int] = {}
        self._shard_peaks: Dict[str, int] = {}

    # ---------------------------------------------------------------- shards
    def shard(self, worker: str) -> ShardWriter:
        """The open shard for ``worker`` (created, or reopened after a close)."""
        if self.closed:
            raise RuntimeError("trace store writer is closed")
        existing = self._open_shards.get(worker)
        if existing is not None:
            return existing
        metas = self._metas.setdefault(worker, [])
        shard = ShardWriter(
            self.directory,
            worker,
            chunk_events=self.chunk_events,
            compress=self.compress,
            start_seq=self._next_seq.get(worker, 0),
            on_chunk=metas.append,
        )
        self._open_shards[worker] = shard
        return shard

    def set_metadata(self, worker: str, metadata: Dict[str, object]) -> None:
        self._metadata[worker] = dict(metadata)

    def close_shard(self, worker: str, *, metadata: Optional[Dict[str, object]] = None) -> None:
        """Seal one worker's shard and merge it into the on-disk index."""
        shard = self._open_shards.pop(worker, None)
        if shard is not None:
            shard.close()
            self._next_seq[worker] = shard.seq
            self._note_peak(shard)
        self._metas.setdefault(worker, [])
        if metadata is not None:
            self.set_metadata(worker, metadata)
        self.write_index()

    # ----------------------------------------------------------------- index
    def write_index(self) -> None:
        """Merge this writer's shards into the store index on disk."""
        try:
            workers = read_index(self.directory)
        except FileNotFoundError:
            workers = {}
        for worker, metas in self._metas.items():
            workers[worker] = WorkerEntry(chunks=list(metas),
                                          metadata=dict(self._metadata.get(worker, {})))
        write_index(self.directory, workers)

    def close(self) -> None:
        """Seal every open shard and write the final index."""
        if self.closed:
            return
        for worker in list(self._open_shards):
            shard = self._open_shards.pop(worker)
            shard.close()
            self._next_seq[worker] = shard.seq
            self._note_peak(shard)
            self._metas.setdefault(worker, [])
        self.write_index()
        self.closed = True

    # ------------------------------------------------------------ accounting
    def bytes_written(self) -> int:
        """Total size of this writer's chunk files on disk."""
        total = 0
        for metas in self._metas.values():
            for meta in metas:
                path = self.directory / meta.file
                if path.exists():
                    total += path.stat().st_size
        return total

    def peak_buffered_records(self) -> int:
        """Largest number of records any shard ever held in memory."""
        peaks = [shard.peak_buffered for shard in self._open_shards.values()]
        peaks.extend(self._shard_peaks.values())
        return max(peaks, default=0)

    def _note_peak(self, shard: ShardWriter) -> None:
        if shard.peak_buffered > self._shard_peaks.get(shard.worker, 0):
            self._shard_peaks[shard.worker] = shard.peak_buffered


class SpillingEventTrace(EventTrace):
    """An :class:`EventTrace` facade that spills records into a shard.

    Used by the profiler in streaming mode: the in-memory lists stay empty —
    every record goes straight into the shard's bounded buffer — while the
    metadata dict behaves as usual and is persisted when the shard closes.
    """

    def __init__(self, shard: ShardWriter, *, metadata: Optional[Dict[str, object]] = None) -> None:
        super().__init__(metadata=dict(metadata) if metadata else {})
        self._shard = shard

    def add_event(self, event: Event) -> None:
        if event.end_us < event.start_us:
            raise ValueError(f"event ends before it starts: {event}")
        if event.category == CATEGORY_OPERATION:
            self._shard.add_operation(event)
        else:
            self._shard.add_event(event)

    def add_marker(self, marker: OverheadMarker) -> None:
        self._shard.add_marker(marker)

    # Counting queries reflect everything spilled so far; the record lists
    # themselves are on disk — query them through :class:`~repro.tracedb.TraceDB`.
    def total_events(self) -> int:
        return self._shard.total_events + self._shard.total_operations

    def span_us(self) -> float:
        return self._shard.max_end_us

    @property
    def shard(self) -> ShardWriter:
        return self._shard
