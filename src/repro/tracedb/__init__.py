"""TraceDB: streaming sharded trace store plus a parallel analysis engine.

The paper's profiler aggregates trace records off the critical path and
analyzes them offline.  This package is the reproduction's scalable version
of that pipeline:

* :class:`StreamingTraceWriter` / :class:`ShardWriter` — incremental,
  bounded-memory trace writing: events are buffered per worker shard and
  flushed as gzip-compressed JSONL chunks *during* profiling instead of one
  dump-at-end.  Flushes never touch the virtual clock, so streaming adds
  zero virtual time (the flush happens off the critical path, as in the
  original tool).
* :class:`ChunkMeta` — per-chunk index entries recording time ranges,
  phases, categories and record counts, so queries can skip whole shards.
* :class:`TraceDB` — the query/aggregation engine: lazy chunk loading with
  an LRU cache, filtered scans (worker / phase / category / time window)
  and whole-store materialisation for legacy consumers.
* :func:`parallel_overlap` / :func:`map_shards` — map-reduce analysis:
  per-shard :func:`~repro.profiler.overlap.compute_overlap` fanned out via
  :mod:`concurrent.futures`, reduced with
  :meth:`~repro.profiler.overlap.OverlapResult.merge`.  The reduction uses
  exactly the same per-worker grouping as the single-pass algorithm, so the
  results are byte-identical.
* ``repro-trace`` (:mod:`repro.tracedb.cli`) — ``summarize`` / ``query`` /
  ``compact`` commands over a store directory.

The legacy :mod:`repro.profiler.trace_store` API is a thin wrapper over
this package; stores written by older versions of the code still load.
"""

from .format import (
    DEFAULT_CHUNK_EVENTS,
    INDEX_FILE,
    STORE_FORMAT,
    ChunkMeta,
    ChunkPayload,
)
from .writer import ShardWriter, SpillingEventTrace, StreamingTraceWriter
from .store import TraceDB
from .mapreduce import map_shards, parallel_overlap, parallel_worker_summaries

__all__ = [
    "DEFAULT_CHUNK_EVENTS",
    "INDEX_FILE",
    "STORE_FORMAT",
    "ChunkMeta",
    "ChunkPayload",
    "ShardWriter",
    "SpillingEventTrace",
    "StreamingTraceWriter",
    "TraceDB",
    "map_shards",
    "parallel_overlap",
    "parallel_worker_summaries",
]
