"""Shard-parallel map-reduce analysis over a TraceDB store.

Overlap computation (Section 3.3 of the paper) is per-worker by
construction: each worker's events are swept against its own operation
annotations and the resulting region durations are summed.  That makes the
store's per-worker shards a natural map-reduce decomposition:

* **map** — load one shard and run
  :func:`~repro.profiler.overlap.compute_overlap` on it (fanned out over a
  :mod:`concurrent.futures` pool);
* **reduce** — :meth:`~repro.profiler.overlap.OverlapResult.merge` the
  per-shard results in sorted worker order.

Because the single-pass :func:`compute_overlap` performs exactly the same
per-worker grouping and the same ordered merge internally, the map-reduce
result is byte-identical to the single-pass result on the same store.
"""

from __future__ import annotations

import os
from concurrent.futures import BrokenExecutor, Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, TypeVar, Union

from ..profiler.overlap import OverlapResult, compute_overlap
from .store import TraceDB

T = TypeVar("T")

#: Execution modes for the map phase.
MODE_SERIAL = "serial"
MODE_THREAD = "thread"
MODE_PROCESS = "process"
MODES = (MODE_SERIAL, MODE_THREAD, MODE_PROCESS)


def _as_db(source: Union[TraceDB, str]) -> TraceDB:
    return source if isinstance(source, TraceDB) else TraceDB(source)


def _make_executor(mode: str, max_workers: int) -> Executor:
    if mode == MODE_PROCESS:
        return ProcessPoolExecutor(max_workers=max_workers)
    return ThreadPoolExecutor(max_workers=max_workers)


def map_shards(
    source: Union[TraceDB, str],
    shard_fn: Callable[[str, str], T],
    *,
    workers: Optional[Iterable[str]] = None,
    max_workers: Optional[int] = None,
    mode: str = MODE_THREAD,
) -> List[T]:
    """Run ``shard_fn(directory, worker)`` per shard; results in sorted worker order.

    ``mode`` selects the pool: ``"thread"`` (default; chunk decoding releases
    little of the GIL but keeps the pool dependency-free), ``"process"`` (true
    parallelism; ``shard_fn`` must be picklable, i.e. a module-level function)
    or ``"serial"``.  The result order is always the sorted worker order,
    independent of completion order, so reductions are deterministic.
    """
    if mode not in MODES:
        raise ValueError(f"unknown map_shards mode {mode!r}; choose from {MODES}")
    db = _as_db(source)
    directory = str(db.directory)
    worker_list = sorted(workers) if workers is not None else db.workers()
    if not worker_list:
        return []
    if mode == MODE_SERIAL or len(worker_list) == 1:
        return [shard_fn(directory, worker) for worker in worker_list]
    pool_size = max_workers if max_workers is not None else min(len(worker_list), os.cpu_count() or 1)
    try:
        executor = _make_executor(mode, pool_size)
    except (OSError, ImportError):
        # Restricted environments (no /dev/shm, no fork) fall back to serial.
        return [shard_fn(directory, worker) for worker in worker_list]
    try:
        with executor:
            futures = [executor.submit(shard_fn, directory, worker) for worker in worker_list]
            return [future.result() for future in futures]
    except BrokenExecutor:
        # The pool itself died (e.g. fork blocked mid-run); shard_fn errors
        # such as a missing chunk file propagate to the caller unchanged.
        return [shard_fn(directory, worker) for worker in worker_list]


# ------------------------------------------------------------------ overlap
def shard_overlap(directory: str, worker: str) -> OverlapResult:
    """Map step: one worker shard's overlap regions (picklable entry point)."""
    db = TraceDB(directory)
    return compute_overlap(db.read_worker(worker), workers=[worker])


def parallel_overlap(
    source: Union[TraceDB, str],
    *,
    workers: Optional[Iterable[str]] = None,
    max_workers: Optional[int] = None,
    mode: str = MODE_THREAD,
) -> OverlapResult:
    """Map-reduce overlap over a store: per-shard overlap, ordered merge.

    Byte-identical to ``compute_overlap(db.to_event_trace())`` — see the
    module docstring.
    """
    results = map_shards(source, shard_overlap, workers=workers,
                         max_workers=max_workers, mode=mode)
    return OverlapResult.merge(results)


# ----------------------------------------------------------- worker summaries
def shard_summary(directory: str, worker: str):
    """Map step: one worker's Figure 8 summary (picklable entry point)."""
    from ..profiler.analysis import summarize_worker_trace
    db = TraceDB(directory)
    return summarize_worker_trace(worker, db.read_worker(worker))


def parallel_worker_summaries(
    source: Union[TraceDB, str],
    *,
    workers: Optional[Iterable[str]] = None,
    max_workers: Optional[int] = None,
    mode: str = MODE_THREAD,
):
    """Per-worker CPU/GPU summaries (Figure 8), computed shard-parallel."""
    return map_shards(source, shard_summary, workers=workers,
                      max_workers=max_workers, mode=mode)
