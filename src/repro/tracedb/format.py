"""On-disk format of a TraceDB store.

A store directory contains

* ``tracedb_index.json`` — one JSON index describing every worker's shard:
  the ordered list of chunk files with their :class:`ChunkMeta` (record
  counts, covered time range, phases and categories present), plus the
  worker's trace metadata.
* ``shard_<worker>_<seq>.jsonl.gz`` — gzip-compressed JSONL chunk files.
  Each line is one record: ``{"t": "e"|"o"|"m", ...}`` for stack events,
  operation annotations and overhead markers respectively.

Stores written by the legacy :mod:`repro.profiler.trace_store` module
(``rlscope_index.json`` plus plain-JSON chunks) are also readable: their
chunks carry no per-chunk statistics, so queries simply cannot skip them.
"""

from __future__ import annotations

import gzip
import io
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..profiler.events import Event, OverheadMarker

INDEX_FILE = "tracedb_index.json"
LEGACY_INDEX_FILE = "rlscope_index.json"
STORE_FORMAT = "tracedb-v1"
CHUNK_PREFIX = "shard"

#: Default number of buffered records before a shard flushes a chunk.
DEFAULT_CHUNK_EVENTS = 50_000

# Record type tags (one JSONL line per record).
RECORD_EVENT = "e"
RECORD_OPERATION = "o"
RECORD_MARKER = "m"


@dataclass(frozen=True)
class ChunkMeta:
    """Index entry for one chunk file.

    ``start_us`` / ``end_us`` / ``phases`` / ``categories`` are ``None`` for
    legacy chunks whose statistics are unknown; such chunks can never be
    skipped by a filtered scan.
    """

    file: str
    worker: str
    seq: int
    num_events: Optional[int] = None
    num_operations: Optional[int] = None
    num_markers: Optional[int] = None
    start_us: Optional[float] = None
    end_us: Optional[float] = None
    phases: Optional[Tuple[str, ...]] = None
    categories: Optional[Tuple[str, ...]] = None
    legacy: bool = False

    @property
    def num_records(self) -> Optional[int]:
        if self.num_events is None or self.num_operations is None or self.num_markers is None:
            return None
        return self.num_events + self.num_operations + self.num_markers

    # ------------------------------------------------------------- filtering
    def may_contain(
        self,
        *,
        phase: Optional[str] = None,
        categories: Optional[Sequence[str]] = None,
        start_us: Optional[float] = None,
        end_us: Optional[float] = None,
    ) -> bool:
        """Whether the chunk can hold records matching the filters.

        Unknown statistics (legacy chunks) conservatively return ``True``.
        """
        if phase is not None and self.phases is not None and phase not in self.phases:
            return False
        if categories is not None and self.categories is not None:
            if not set(categories) & set(self.categories):
                return False
        if start_us is not None and self.end_us is not None and self.end_us <= start_us:
            return False
        if end_us is not None and self.start_us is not None and self.start_us >= end_us:
            return False
        return True

    # --------------------------------------------------------- serialisation
    def to_dict(self) -> Dict[str, object]:
        return {
            "file": self.file,
            "worker": self.worker,
            "seq": self.seq,
            "num_events": self.num_events,
            "num_operations": self.num_operations,
            "num_markers": self.num_markers,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "phases": None if self.phases is None else list(self.phases),
            "categories": None if self.categories is None else list(self.categories),
            "legacy": self.legacy,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ChunkMeta":
        phases = data.get("phases")
        categories = data.get("categories")
        return cls(
            file=str(data["file"]),
            worker=str(data["worker"]),
            seq=int(data["seq"]),                              # type: ignore[arg-type]
            num_events=None if data.get("num_events") is None else int(data["num_events"]),          # type: ignore[arg-type]
            num_operations=None if data.get("num_operations") is None else int(data["num_operations"]),  # type: ignore[arg-type]
            num_markers=None if data.get("num_markers") is None else int(data["num_markers"]),        # type: ignore[arg-type]
            start_us=None if data.get("start_us") is None else float(data["start_us"]),               # type: ignore[arg-type]
            end_us=None if data.get("end_us") is None else float(data["end_us"]),                     # type: ignore[arg-type]
            phases=None if phases is None else tuple(str(p) for p in phases),      # type: ignore[union-attr]
            categories=None if categories is None else tuple(str(c) for c in categories),  # type: ignore[union-attr]
            legacy=bool(data.get("legacy", False)),
        )


@dataclass
class ChunkPayload:
    """Decoded contents of one chunk file."""

    events: List[Event] = field(default_factory=list)
    operations: List[Event] = field(default_factory=list)
    markers: List[OverheadMarker] = field(default_factory=list)


# ------------------------------------------------------------------- chunks
def chunk_filename(worker: str, seq: int, *, compress: bool = True) -> str:
    suffix = ".jsonl.gz" if compress else ".jsonl"
    return f"{CHUNK_PREFIX}_{worker}_{seq:05d}{suffix}"


def _open_chunk_for_write(path: Path, compress: bool):
    if not compress:
        return open(path, "wt", encoding="utf-8")
    # Pin the gzip header mtime so identical payloads produce identical
    # bytes — recovery paths compare stores byte-for-byte.
    return io.TextIOWrapper(
        gzip.GzipFile(path, "wb", mtime=0), encoding="utf-8")


def write_chunk(path: Path, payload: ChunkPayload, *, compress: bool = True) -> None:
    with _open_chunk_for_write(path, compress) as handle:
        for event in payload.events:
            handle.write(json.dumps({"t": RECORD_EVENT, **event.to_dict()}) + "\n")
        for op in payload.operations:
            handle.write(json.dumps({"t": RECORD_OPERATION, **op.to_dict()}) + "\n")
        for marker in payload.markers:
            handle.write(json.dumps({"t": RECORD_MARKER, **marker.to_dict()}) + "\n")


def read_chunk(path: Path) -> ChunkPayload:
    """Decode one chunk file (new JSONL format or a legacy JSON container)."""
    name = path.name
    if name.endswith(".jsonl") or name.endswith(".jsonl.gz"):
        payload = ChunkPayload()
        opener = gzip.open if name.endswith(".gz") else open
        with opener(path, "rt", encoding="utf-8") as handle:  # type: ignore[operator]
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                kind = record.pop("t")
                if kind == RECORD_EVENT:
                    payload.events.append(Event.from_dict(record))
                elif kind == RECORD_OPERATION:
                    payload.operations.append(Event.from_dict(record))
                elif kind == RECORD_MARKER:
                    payload.markers.append(OverheadMarker.from_dict(record))
                else:  # pragma: no cover - future format versions
                    raise ValueError(f"unknown record type {kind!r} in {path}")
        return payload
    # Legacy chunk: one JSON object holding flat record lists.
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    return ChunkPayload(
        events=[Event.from_dict(d) for d in data.get("events", [])],
        operations=[Event.from_dict(d) for d in data.get("operations", [])],
        markers=[OverheadMarker.from_dict(d) for d in data.get("markers", [])],
    )


def build_meta(file: str, worker: str, seq: int, payload: ChunkPayload) -> ChunkMeta:
    """Compute the index statistics for one chunk's records."""
    starts: List[float] = [e.start_us for e in payload.events]
    ends: List[float] = [e.end_us for e in payload.events]
    starts += [op.start_us for op in payload.operations]
    ends += [op.end_us for op in payload.operations]
    starts += [m.time_us for m in payload.markers]
    ends += [m.time_us for m in payload.markers]
    phases = {e.phase for e in payload.events} | {op.phase for op in payload.operations}
    phases |= {m.phase for m in payload.markers}
    categories = {e.category for e in payload.events}
    return ChunkMeta(
        file=file,
        worker=worker,
        seq=seq,
        num_events=len(payload.events),
        num_operations=len(payload.operations),
        num_markers=len(payload.markers),
        start_us=min(starts) if starts else None,
        end_us=max(ends) if ends else None,
        phases=tuple(sorted(phases)),
        categories=tuple(sorted(categories)),
    )


# -------------------------------------------------------------------- index
@dataclass
class WorkerEntry:
    """One worker's shard in the store index."""

    chunks: List[ChunkMeta] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)


def write_index(directory: Path, workers: Mapping[str, WorkerEntry]) -> None:
    """Atomically (re)write the store index."""
    index = {
        "format": STORE_FORMAT,
        "workers": {
            worker: {
                "chunks": [meta.to_dict() for meta in entry.chunks],
                "metadata": dict(entry.metadata),
            }
            for worker, entry in workers.items()
        },
    }
    path = directory / INDEX_FILE
    tmp = directory / (INDEX_FILE + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(index, handle, indent=2)
    os.replace(tmp, path)


def read_index(directory: Path) -> Dict[str, WorkerEntry]:
    """Read a store index, falling back to the legacy RL-Scope index format.

    Raises :class:`FileNotFoundError` when the directory holds neither.
    """
    index_path = directory / INDEX_FILE
    if index_path.exists():
        with open(index_path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
        workers: Dict[str, WorkerEntry] = {}
        for worker, entry in raw.get("workers", {}).items():
            workers[worker] = WorkerEntry(
                chunks=[ChunkMeta.from_dict(m) for m in entry.get("chunks", [])],
                metadata=dict(entry.get("metadata", {})),
            )
        return workers

    legacy_path = directory / LEGACY_INDEX_FILE
    if legacy_path.exists():
        with open(legacy_path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
        workers = {}
        for worker, entry in raw.get("workers", {}).items():
            metas = [
                ChunkMeta(file=str(name), worker=worker, seq=seq, legacy=True)
                for seq, name in enumerate(entry.get("chunks", []))
            ]
            workers[worker] = WorkerEntry(chunks=metas, metadata=dict(entry.get("metadata", {})))
        return workers

    raise FileNotFoundError(f"no TraceDB or RL-Scope trace index found in {directory}")
