"""``repro-trace``: inspect, query and compact TraceDB trace stores.

Examples::

    repro-trace summarize traces/            # per-worker shape of the store
    repro-trace summarize traces/ --overlap  # plus map-reduce overlap totals
    repro-trace query traces/ --worker selfplay_worker_3 --category GPU --limit 10
    repro-trace query traces/ --phase sgd_updates --count
    repro-trace compact traces/ --out traces_compacted/ --chunk-events 100000

``compact`` rewrites a store with a fresh chunking (merging many small
chunks into full-size compressed ones); it also converts legacy
``rlscope_index.json`` stores into the indexed TraceDB format.
"""

from __future__ import annotations

import argparse
import json
from typing import Optional, Sequence


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-trace", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser("summarize", help="print per-worker shape of a trace store")
    summarize.add_argument("directory")
    summarize.add_argument("--overlap", action="store_true",
                           help="also run the map-reduce overlap pass and print category totals")
    summarize.add_argument("--jobs", type=int, default=None, help="map-phase pool size")
    summarize.add_argument("--mode", choices=["serial", "thread", "process"], default="thread",
                           help="map-phase executor (default: thread)")

    query = sub.add_parser("query", help="print matching stack events as JSON lines")
    query.add_argument("directory")
    query.add_argument("--worker", default=None)
    query.add_argument("--phase", default=None)
    query.add_argument("--category", default=None, action="append",
                       help="event category filter (repeatable)")
    query.add_argument("--start-us", type=float, default=None)
    query.add_argument("--end-us", type=float, default=None)
    query.add_argument("--limit", type=int, default=None)
    query.add_argument("--count", action="store_true", help="print only the number of matches")

    compact = sub.add_parser("compact", help="rewrite a store with fresh chunking/compression")
    compact.add_argument("directory")
    compact.add_argument("--out", required=True, help="output store directory")
    compact.add_argument("--chunk-events", type=int, default=None,
                         help="records per chunk in the output store (default: store default)")
    compact.add_argument("--no-compress", action="store_true",
                         help="write plain JSONL chunks instead of gzip")
    return parser


def _cmd_summarize(args: argparse.Namespace) -> int:
    from .mapreduce import parallel_overlap
    from .store import TraceDB

    db = TraceDB(args.directory)
    summary = db.summary()
    header = f"{'worker':32s} {'chunks':>6s} {'events':>10s} {'ops':>8s} {'markers':>8s} {'span (s)':>10s}"
    print(f"trace store: {db.directory}")
    print(header)
    print("-" * len(header))
    for worker, info in summary.items():
        end_us = info["end_us"]
        span = f"{float(end_us) / 1e6:10.3f}" if end_us is not None else "         ?"
        print(f"{worker:32s} {info['chunks']:>6d} {info['events']:>10} {info['operations']:>8} "
              f"{info['markers']:>8} {span}")
        if info["phases"]:
            print(f"{'':32s}   phases: {', '.join(info['phases'])}")
        if info["legacy_chunks"]:
            print(f"{'':32s}   ({info['legacy_chunks']} legacy chunks without index statistics)")
    if args.overlap:
        result = parallel_overlap(db, max_workers=args.jobs, mode=args.mode)
        print()
        print(f"map-reduce overlap over {len(db.workers())} shard(s):")
        totals: dict = {}
        for op, cats in result.category_breakdown().items():
            for cat, us in cats.items():
                totals[cat] = totals.get(cat, 0.0) + us
        for cat in sorted(totals):
            print(f"  {cat:12s} {totals[cat] / 1e6:12.3f} s")
        print(f"  {'total':12s} {result.total_us(include_untracked=False) / 1e6:12.3f} s (tracked)")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from .store import TraceDB

    db = TraceDB(args.directory)
    filters = dict(worker=args.worker, phase=args.phase,
                   category=args.category if args.category else None,
                   start_us=args.start_us, end_us=args.end_us)
    if args.count:
        print(db.count_events(**filters))
        return 0
    matched = 0
    for event in db.iter_events(**filters):
        print(json.dumps(event.to_dict()))
        matched += 1
        if args.limit is not None and matched >= args.limit:
            break
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .format import DEFAULT_CHUNK_EVENTS
    from .store import TraceDB
    from .writer import StreamingTraceWriter

    if Path(args.out).resolve() == Path(args.directory).resolve():
        raise ValueError("--out must differ from the input directory: in-place compaction "
                         "would overwrite chunks before they are read")
    db = TraceDB(args.directory)
    chunk_events = args.chunk_events if args.chunk_events is not None else DEFAULT_CHUNK_EVENTS
    writer = StreamingTraceWriter(args.out, chunk_events=chunk_events,
                                  compress=not args.no_compress)
    in_chunks = 0
    for worker in db.workers():
        shard = writer.shard(worker)
        # Stream one input chunk at a time so compaction stays bounded-memory.
        for meta in db.chunks(worker):
            in_chunks += 1
            payload = db.chunk_payload(meta)
            for event in payload.events:
                shard.add_event(event)
            for op in payload.operations:
                shard.add_operation(op)
            for marker in payload.markers:
                shard.add_marker(marker)
        writer.close_shard(worker, metadata=db.metadata(worker))
    writer.close()
    out_db = TraceDB(args.out)
    print(f"compacted {in_chunks} chunk(s) across {len(db.workers())} worker(s) "
          f"into {len(out_db.chunks())} chunk(s) at {args.out} "
          f"({writer.bytes_written()} bytes of chunk data)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    commands = {"summarize": _cmd_summarize, "query": _cmd_query, "compact": _cmd_compact}
    try:
        return commands[args.command](args)
    except FileNotFoundError as exc:
        raise SystemExit(f"repro-trace: {exc}")
    except KeyError as exc:
        raise SystemExit(f"repro-trace: {exc.args[0] if exc.args else exc}")
    except ValueError as exc:
        raise SystemExit(f"repro-trace: {exc}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
