"""TraceDB: the query/aggregation engine over a sharded trace store.

Chunks are loaded lazily (with a small LRU cache) and filtered scans use
the per-chunk index statistics — time range, phases, categories — to skip
chunks that cannot contain a match, so a query over one phase of one worker
touches only that worker's relevant chunks rather than the whole store.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from ..profiler.events import Event, EventTrace, OverheadMarker, merge_traces
from .format import ChunkMeta, ChunkPayload, read_chunk, read_index

CategoryFilter = Union[str, Sequence[str], None]


def _category_set(category: CategoryFilter) -> Optional[List[str]]:
    if category is None:
        return None
    if isinstance(category, str):
        return [category]
    return list(category)


def _event_matches(
    event: Event,
    *,
    phase: Optional[str],
    categories: Optional[List[str]],
    start_us: Optional[float],
    end_us: Optional[float],
) -> bool:
    if phase is not None and event.phase != phase:
        return False
    if categories is not None and event.category not in categories:
        return False
    if start_us is not None and event.end_us <= start_us:
        return False
    if end_us is not None and event.start_us >= end_us:
        return False
    return True


class TraceDB:
    """Read-only handle on a (possibly still growing) trace store directory."""

    def __init__(self, directory: str, *, cache_chunks: int = 8) -> None:
        self.directory = Path(directory)
        self._workers = read_index(self.directory)
        self._cache: "OrderedDict[str, ChunkPayload]" = OrderedDict()
        self._cache_chunks = max(cache_chunks, 1)
        #: Number of chunk files decoded from disk (cache misses); lets tests
        #: and the CLI observe how much a filtered scan actually touched.
        self.chunks_loaded = 0

    # ----------------------------------------------------------------- shape
    def workers(self) -> List[str]:
        return sorted(self._workers.keys())

    def chunks(self, worker: Optional[str] = None) -> List[ChunkMeta]:
        if worker is not None:
            return list(self._entry(worker).chunks)
        return [meta for w in self.workers() for meta in self._workers[w].chunks]

    def metadata(self, worker: str) -> Dict[str, object]:
        return dict(self._entry(worker).metadata)

    def _entry(self, worker: str):
        entry = self._workers.get(worker)
        if entry is None:
            raise KeyError(f"worker {worker!r} not present in trace store {self.directory}")
        return entry

    def num_events(self, worker: Optional[str] = None) -> int:
        """Total stack events (operations excluded); loads only unindexed chunks."""
        total = 0
        for meta in self.chunks(worker):
            if meta.num_events is not None:
                total += meta.num_events
            else:
                total += len(self._payload(meta).events)
        return total

    def span_us(self) -> float:
        """Largest end timestamp across every shard."""
        span = 0.0
        for meta in self.chunks():
            if meta.end_us is not None:
                span = max(span, meta.end_us)
            else:
                payload = self._payload(meta)
                for record in payload.events + payload.operations:
                    span = max(span, record.end_us)
        return span

    # ------------------------------------------------------------ chunk load
    def _payload(self, meta: ChunkMeta) -> ChunkPayload:
        cached = self._cache.get(meta.file)
        if cached is not None:
            self._cache.move_to_end(meta.file)
            return cached
        payload = read_chunk(self.directory / meta.file)
        self.chunks_loaded += 1
        self._cache[meta.file] = payload
        if len(self._cache) > self._cache_chunks:
            self._cache.popitem(last=False)
        return payload

    def chunk_payload(self, meta: ChunkMeta) -> ChunkPayload:
        """Load (or fetch from the cache) one chunk's decoded records."""
        return self._payload(meta)

    def _selected_workers(self, worker: Optional[str]) -> List[str]:
        if worker is None:
            return self.workers()
        self._entry(worker)  # raise KeyError early
        return [worker]

    # ----------------------------------------------------------------- scans
    def iter_events(
        self,
        *,
        worker: Optional[str] = None,
        phase: Optional[str] = None,
        category: CategoryFilter = None,
        start_us: Optional[float] = None,
        end_us: Optional[float] = None,
    ) -> Iterator[Event]:
        """Lazily yield stack events matching every given filter.

        The time window selects events *overlapping* ``[start_us, end_us)``.
        """
        categories = _category_set(category)
        for name in self._selected_workers(worker):
            for meta in self._workers[name].chunks:
                if not meta.may_contain(phase=phase, categories=categories,
                                        start_us=start_us, end_us=end_us):
                    continue
                for event in self._payload(meta).events:
                    if _event_matches(event, phase=phase, categories=categories,
                                      start_us=start_us, end_us=end_us):
                        yield event

    def query(
        self,
        *,
        worker: Optional[str] = None,
        phase: Optional[str] = None,
        category: CategoryFilter = None,
        start_us: Optional[float] = None,
        end_us: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> List[Event]:
        out: List[Event] = []
        for event in self.iter_events(worker=worker, phase=phase, category=category,
                                      start_us=start_us, end_us=end_us):
            out.append(event)
            if limit is not None and len(out) >= limit:
                break
        return out

    def count_events(self, **filters) -> int:
        return sum(1 for _ in self.iter_events(**filters))

    def iter_operations(
        self,
        *,
        worker: Optional[str] = None,
        phase: Optional[str] = None,
        start_us: Optional[float] = None,
        end_us: Optional[float] = None,
    ) -> Iterator[Event]:
        for name in self._selected_workers(worker):
            for meta in self._workers[name].chunks:
                if not meta.may_contain(phase=phase, start_us=start_us, end_us=end_us):
                    continue
                for op in self._payload(meta).operations:
                    if _event_matches(op, phase=phase, categories=None,
                                      start_us=start_us, end_us=end_us):
                        yield op

    def iter_markers(
        self,
        *,
        worker: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> Iterator[OverheadMarker]:
        for name in self._selected_workers(worker):
            for meta in self._workers[name].chunks:
                for marker in self._payload(meta).markers:
                    if kind is None or marker.kind == kind:
                        yield marker

    # --------------------------------------------------------- materialising
    def read_worker(self, worker: str) -> EventTrace:
        """Materialise one worker's full shard as an in-memory trace."""
        entry = self._entry(worker)
        trace = EventTrace(metadata=dict(entry.metadata))
        for meta in entry.chunks:
            payload = self._payload(meta)
            trace.events.extend(payload.events)
            trace.operations.extend(payload.operations)
            trace.markers.extend(payload.markers)
        return trace

    def read_all(self) -> Dict[str, EventTrace]:
        return {worker: self.read_worker(worker) for worker in self.workers()}

    def to_event_trace(self, workers: Optional[Iterable[str]] = None) -> EventTrace:
        """Materialise (a subset of) the store as one merged trace."""
        names = sorted(workers) if workers is not None else self.workers()
        return merge_traces(self.read_worker(name) for name in names)

    # ---------------------------------------------------------------- summary
    def summary(self) -> Dict[str, Dict[str, object]]:
        """Per-worker shape of the store, from index statistics alone."""
        out: Dict[str, Dict[str, object]] = {}
        for worker in self.workers():
            metas = self._workers[worker].chunks
            known = [m for m in metas if m.num_records is not None]
            phases = sorted({p for m in known if m.phases for p in m.phases})
            categories = sorted({c for m in known if m.categories for c in m.categories})
            ends = [m.end_us for m in known if m.end_us is not None]
            starts = [m.start_us for m in known if m.start_us is not None]
            out[worker] = {
                "chunks": len(metas),
                "legacy_chunks": sum(1 for m in metas if m.legacy),
                "events": sum(m.num_events or 0 for m in known),
                "operations": sum(m.num_operations or 0 for m in known),
                "markers": sum(m.num_markers or 0 for m in known),
                "start_us": min(starts) if starts else None,
                "end_us": max(ends) if ends else None,
                "phases": phases,
                "categories": categories,
                "metadata": dict(self._workers[worker].metadata),
            }
        return out
