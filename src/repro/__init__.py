"""repro: a reproduction of RL-Scope (MLSys 2021) on a simulated CPU/GPU stack.

The package is organised as the paper's system is:

* :mod:`repro.profiler` -- RL-Scope itself (annotations, transparent
  interception, cross-stack overlap, calibration and overhead correction).
* :mod:`repro.hw`, :mod:`repro.cuda`, :mod:`repro.backend`, :mod:`repro.sim`,
  :mod:`repro.rl`, :mod:`repro.minigo` -- the simulated substrates the
  profiler measures (virtual GPU + CUDA runtime + CUPTI, a miniature ML
  backend with Graph / Autograph / Eager execution, simulators, RL
  algorithms, and the Minigo scale-up workload).
* :mod:`repro.experiments` -- the harness that regenerates every table and
  figure of the paper's evaluation.
"""

from .system import System

__version__ = "0.1.0"

__all__ = ["System", "__version__"]
