"""Parallel self-play worker pool sharing a single GPU.

The paper's Minigo workload runs 16 self-play worker processes in parallel,
all submitting inference minibatches to one GPU (Section 4.3 / Appendix B.2).
Each worker here gets its own virtual clock, cost model, CUDA runtime and
CUPTI instance — its own process, in effect — while kernels land on a shared
:class:`~repro.hw.gpu.GPUDevice`, each worker on its own stream (its own CUDA
context).  Worker clocks share epoch zero, so the merged device timeline is
what an ``nvidia-smi`` sampler would observe during parallel data collection.

Two schedulers simulate the parallel collection phase:

* ``sequential`` (legacy): each worker runs to completion on its own
  virtual timeline.  A shared-service flush then almost always serves a
  single worker's wave, so cross-worker batching never materializes.
* ``event``: a :class:`PoolScheduler` interleaves all workers' stepwise
  :class:`~repro.minigo.selfplay.GameDriver`s in virtual-time order and
  serves the shared :class:`~repro.minigo.inference.InferenceService` once
  every runnable worker is blocked at an inference boundary — so one engine
  call batches leaves from many workers at the same virtual instant, the way
  a real inference server batches across client processes.  With several
  model replicas (``num_replicas > 1``) the scheduler additionally serves
  *full* batches eagerly, so free replicas start in-flight batches while the
  remaining workers keep running.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids an import cycle
    from ..tracedb.store import TraceDB
    from ..tracedb.writer import StreamingTraceWriter
    from .inference import InferenceService

from ..backend.graph import GraphEngine
from ..backend.layers import hard_update
from ..hw.costmodel import CostModelConfig
from ..hw.gpu import GPUDevice
from ..profiler.api import Profiler, ProfilerConfig
from ..profiler.events import EventTrace
from ..system import System
from .inference import (
    FLUSH_MAX_BATCH,
    FLUSH_POLICIES,
    FLUSH_TIMEOUT,
    FLUSH_UNBATCHED,
    ROUTING_POLICIES,
    ROUTING_ROUND_ROBIN,
    RoutingPolicy,
)
from .selfplay import GameDriver, PolicyValueNet, SelfPlayResult, SelfPlayWorker

#: Scheduler modes understood by :class:`SelfPlayPool`.
SCHEDULER_SEQUENTIAL = "sequential"
SCHEDULER_EVENT = "event"
SCHEDULERS = (SCHEDULER_SEQUENTIAL, SCHEDULER_EVENT)


@dataclass
class WorkerRun:
    """Output of one worker in the pool.

    ``trace`` is ``None`` when profiling is off or when the pool streams
    traces into a shared store (query them via :meth:`SelfPlayPool.tracedb`);
    ``system`` is ``None`` for runs reconstructed without a live system.
    """

    worker: str
    result: SelfPlayResult
    trace: Optional[EventTrace]
    total_time_us: float
    system: Optional[System] = field(repr=False, default=None)


@dataclass
class SchedulerStats:
    """Counters describing one event-driven scheduling run.

    The heap counters are zero under the legacy linear-scan loop
    (``use_heap=False``), which lets tests assert both that the heap is
    actually exercised and that every scheduling *decision* counter
    (``steps``, ``serves``, ``timeout_serves``, ``eager_serves``,
    ``steps_per_worker``) is identical between the two loops.
    """

    steps: int = 0            #: driver steps executed
    serves: int = 0           #: times the service queue was served
    timeout_serves: int = 0   #: serves triggered by a partial-batch deadline
    eager_serves: int = 0     #: full-batch serves issued while workers still ran
    steps_per_worker: Dict[str, int] = field(default_factory=dict)
    # Heap bookkeeping (heap-driven loop only).
    heap_pushes: int = 0      #: (clock, index) entries pushed
    heap_pops: int = 0        #: entries popped (valid and stale)
    heap_stale_pops: int = 0  #: popped entries invalidated by a newer clock


class PoolScheduler:
    """Virtual-time event loop interleaving self-play workers at wave granularity.

    The scheduler repeatedly picks the runnable driver with the smallest
    virtual clock and advances it one step (one MCTS wave or one move
    commit).  A driver that submits an evaluation wave suspends; once every
    unfinished driver is blocked on inference the scheduler serves the
    shared service under its flush policy, which batches the pending waves
    of many workers into shared engine calls and un-blocks everyone whose
    ticket was served.  Under the ``timeout`` policy a pending partial batch
    is additionally served as soon as virtual time passes its deadline
    (first arrival + ``flush_timeout_us``), even while other workers are
    still runnable — the latency/throughput knob of a real batching server.

    The scheduler is replica-aware: with more than one model replica it no
    longer waits for every worker to block.  As soon as a *full* batch is
    pending (``max_batch`` rows of one network — it can never gather more
    riders), it is served eagerly so a free replica can start it while the
    remaining workers keep tree-searching; its riders un-block and overlap
    their next waves with other replicas' in-flight batches.  With a single
    replica the eager path is disabled, so single-replica runs reproduce
    the all-blocked barrier schedule bit-for-bit.

    **Event-loop cost.**  By default the runnable driver with the minimum
    clock comes off a lazy min-heap of ``(now_us, index)`` entries: a
    driver is (re-)pushed whenever it becomes runnable or its clock
    advances, and entries superseded by a newer push are discarded on pop
    (invalidate-on-advance) — O(log workers) per event instead of the
    original rebuild-the-runnable-list-and-``min()`` scan, which cost
    O(workers) *per event* and dominated interpreter time at high worker
    counts.  The legacy scan loop is kept behind ``use_heap=False`` (or the
    :attr:`default_use_heap` class switch) as the pinned pre-optimization
    baseline; both loops produce identical schedules, stats and game
    records (``tests/test_scheduler.py``).
    """

    #: Default for ``use_heap`` — the wall-clock benchmark flips this to
    #: time the pre-optimization linear-scan loop without threading a knob
    #: through every pool constructor.
    default_use_heap: bool = True

    def __init__(self, drivers: Sequence[GameDriver], service: "InferenceService", *,
                 flush_policy: str = FLUSH_MAX_BATCH,
                 flush_timeout_us: Optional[float] = None,
                 use_heap: Optional[bool] = None) -> None:
        if not drivers:
            raise ValueError("scheduler needs at least one driver")
        if flush_policy not in FLUSH_POLICIES:
            raise ValueError(f"unknown flush policy {flush_policy!r}; expected one of {FLUSH_POLICIES}")
        if flush_policy == FLUSH_TIMEOUT and (flush_timeout_us is None or flush_timeout_us < 0):
            raise ValueError("the timeout flush policy requires a non-negative flush_timeout_us")
        self.drivers = list(drivers)
        self.service = service
        self.flush_policy = flush_policy
        self.flush_timeout_us = flush_timeout_us
        self.use_heap = self.default_use_heap if use_heap is None else use_heap
        self.stats = SchedulerStats()
        # Signature of the pending queue after a fruitless eager attempt
        # plus the virtual time at which retrying could first succeed (the
        # earliest held full batch's departure), so the planner is not
        # re-run every step while nothing changed.
        self._stale_eager_signature: Optional[Tuple[int, int]] = None
        self._eager_retry_at_us: Optional[float] = None

    def _serve(self, *, arrival_cutoff_us: Optional[float] = None) -> int:
        self.stats.serves += 1
        return self.service.serve_queued(policy=self.flush_policy,
                                         timeout_us=self.flush_timeout_us,
                                         arrival_cutoff_us=arrival_cutoff_us)

    def _pending_deadline_us(self) -> Optional[float]:
        if self.flush_policy != FLUSH_TIMEOUT:
            return None
        earliest = self.service.earliest_pending_arrival_us()
        if earliest is None:
            return None
        return earliest + self.flush_timeout_us

    def _try_eager_serve(self, stable_before_us: float) -> bool:
        """Serve pending *full* batches on the replica pool, if any.

        Only meaningful with several replicas (a single replica reproduces
        the all-blocked barrier schedule) and under a batching flush policy.
        ``stable_before_us`` is the smallest runnable worker clock: only
        batches departing at or before it are safe to serve — a later-
        departing batch could still be reordered behind a future submission
        in global arrival order.  Returns True when at least one batch was
        served — workers may have un-blocked, so the caller must recompute
        the runnable set.
        """
        if self.service.num_replicas <= 1 or self.flush_policy == FLUSH_UNBATCHED:
            return False
        if self.service.pending_rows < self.service.max_batch:
            return False
        signature = (self.service.pending_tickets, self.service.pending_rows)
        if signature == self._stale_eager_signature and (
                self._eager_retry_at_us is None
                or stable_before_us < self._eager_retry_at_us):
            # Same queue as the last fruitless attempt, and virtual time has
            # not yet reached the earliest held batch's departure (if any):
            # re-planning cannot serve anything new.
            return False
        calls = self.service.serve_queued(policy=self.flush_policy,
                                          timeout_us=self.flush_timeout_us,
                                          full_batches_only=True,
                                          stable_before_us=stable_before_us)
        if calls:
            self.stats.serves += 1
            self.stats.eager_serves += 1
            self._stale_eager_signature = None
            self._eager_retry_at_us = None
            return True
        # Nothing was due: rows spread across networks, deadline-split
        # partials, or full batches departing past the stability horizon.
        # Remember the queue shape (and when a held full batch becomes due)
        # so the planner is not re-run until something can change.
        self._stale_eager_signature = signature
        self._eager_retry_at_us = self.service.last_undue_full_depart_us
        return False

    def run(self) -> SchedulerStats:
        """Drive every worker's games to completion; returns scheduling stats."""
        if self.use_heap:
            return self._run_heap()
        return self._run_scan()

    def _step(self, driver: GameDriver) -> None:
        self.stats.steps += 1
        worker = driver.worker.system.worker
        self.stats.steps_per_worker[worker] = self.stats.steps_per_worker.get(worker, 0) + 1
        driver.step()

    def _run_heap(self) -> SchedulerStats:
        """Heap-driven event loop: O(log workers) per event.

        The heap holds ``(now_us, index)`` entries; ``queued_key[index]``
        remembers the clock of a driver's most recent push.  A popped entry
        whose clock no longer matches was superseded by a later push
        (invalidate-on-advance) and is discarded.  Drivers are pushed when
        they become runnable — at the start, after a step that leaves them
        runnable, and after any serve (only a serve can un-block a driver;
        blocked drivers' clocks never move, so a sweep over the drivers per
        *serve* keeps the heap complete without touching it per event).
        Ties pop the lowest index first — exactly the driver ``min()``
        returned in the linear scan, so schedules are identical.
        """
        stats = self.stats
        drivers = self.drivers
        heap: List[Tuple[float, int]] = []
        queued_key: List[Optional[float]] = [None] * len(drivers)

        def push(index: int) -> None:
            key = drivers[index].now_us
            if queued_key[index] != key:
                queued_key[index] = key
                heapq.heappush(heap, (key, index))
                stats.heap_pushes += 1

        def push_runnable() -> None:
            for index, driver in enumerate(drivers):
                if driver.runnable:
                    push(index)

        push_runnable()
        while True:
            nxt: Optional[GameDriver] = None
            index = -1
            while heap:
                key, candidate = heapq.heappop(heap)
                stats.heap_pops += 1
                if queued_key[candidate] != key:
                    # Superseded by a newer push for this driver.
                    stats.heap_stale_pops += 1
                    continue
                queued_key[candidate] = None
                driver = drivers[candidate]
                if driver.now_us != key or not driver.runnable:
                    # Defensive: state changed without a re-push.  A driver
                    # that is still runnable must not fall out of the heap —
                    # losing it would starve the worker (or deadlock).
                    stats.heap_stale_pops += 1
                    if driver.runnable:
                        push(candidate)
                    continue
                nxt, index = driver, candidate
                break
            if nxt is None:
                if self.service.pending_tickets:
                    # Everyone is blocked at an inference boundary: this is
                    # the virtual instant at which one engine call can serve
                    # every pending wave.
                    self._serve()
                    push_runnable()
                    continue
                if all(driver.finished for driver in drivers):
                    return stats
                raise RuntimeError("scheduler deadlock: unfinished workers but "
                                   "nothing runnable and nothing pending")
            if self._try_eager_serve(nxt.now_us):
                # nxt was not stepped; it and any just-unblocked riders go
                # back into the heap before the next pick.
                push(index)
                push_runnable()
                continue
            deadline = self._pending_deadline_us()
            if deadline is not None and nxt.now_us >= deadline:
                # The oldest pending batch times out before the next worker
                # would act: depart it partial, serving only requests that
                # arrived by the deadline (later ones wait for more riders).
                self.stats.timeout_serves += 1
                self._serve(arrival_cutoff_us=deadline)
                push(index)
                push_runnable()
                continue
            self._step(nxt)
            if nxt.runnable:
                push(index)

    def _run_scan(self) -> SchedulerStats:
        """Original linear-scan loop: rebuilds the runnable list per event.

        O(workers) per event; preserved as the pinned pre-optimization
        baseline for the wall-clock benchmark and as the oracle the heap
        loop's schedules are asserted against.
        """
        while True:
            runnable = [driver for driver in self.drivers if driver.runnable]
            if not runnable:
                if self.service.pending_tickets:
                    self._serve()
                    continue
                if all(driver.finished for driver in self.drivers):
                    return self.stats
                raise RuntimeError("scheduler deadlock: unfinished workers but "
                                   "nothing runnable and nothing pending")
            nxt = min(runnable, key=lambda driver: driver.now_us)
            if self._try_eager_serve(nxt.now_us):
                continue
            deadline = self._pending_deadline_us()
            if deadline is not None and nxt.now_us >= deadline:
                self.stats.timeout_serves += 1
                self._serve(arrival_cutoff_us=deadline)
                continue
            self._step(nxt)


class SelfPlayPool:
    """Pool of self-play workers that share one GPU device.

    Workers are simulated sequentially but on independent virtual timelines
    starting at zero, which is equivalent to running them in parallel on a
    machine with enough CPU cores (the paper uses one worker per core).
    """

    def __init__(
        self,
        num_workers: int = 16,
        *,
        board_size: int = 9,
        num_simulations: int = 16,
        games_per_worker: int = 1,
        max_moves: Optional[int] = None,
        hidden: tuple = (128, 128),
        profile: bool = True,
        cost_config: Optional[CostModelConfig] = None,
        seed: int = 0,
        trace_dir: Optional[str] = None,
        store: Optional["StreamingTraceWriter"] = None,
        chunk_events: int = 50_000,
        batched_inference: bool = False,
        leaf_batch: int = 1,
        inference_max_batch: int = 64,
        num_replicas: int = 1,
        routing: "str | RoutingPolicy" = ROUTING_ROUND_ROBIN,
        scheduler: str = SCHEDULER_SEQUENTIAL,
        flush_policy: str = FLUSH_MAX_BATCH,
        flush_timeout_us: Optional[float] = None,
    ) -> None:
        """With ``batched_inference=True`` the pool creates one shared
        :class:`~repro.minigo.inference.InferenceService` holding
        ``num_replicas`` model replicas behind the ``routing`` policy
        (``round-robin``, ``least-loaded``, ``sticky``, or a
        :class:`~repro.minigo.inference.RoutingPolicy` instance); replica 0
        shares the pool's primary GPU, further replicas each model an
        additional inference GPU.  Every worker's MCTS collects up to
        ``leaf_batch`` in-flight leaves per wave for batched evaluation
        through the service.  At ``leaf_batch=1`` the batched path
        reproduces the legacy per-leaf game records move-for-move under
        identical seeds, and at ``num_replicas=1`` (any routing) the sharded
        service reproduces the single-replica timelines bit-for-bit.

        ``scheduler="event"`` (requires ``batched_inference``) replaces the
        run-each-worker-to-completion loop with a :class:`PoolScheduler`
        that interleaves all workers at wave granularity and serves the
        service under ``flush_policy`` (``max-batch``, ``timeout`` with
        ``flush_timeout_us``, or ``unbatched`` — the bit-for-bit
        determinism baseline), so engine calls batch leaves across
        workers; with several replicas the scheduler also serves full
        batches eagerly so free replicas overlap in-flight batches with
        still-running workers."""
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if num_replicas <= 0:
            raise ValueError("num_replicas must be positive")
        if num_replicas > 1 and not batched_inference:
            raise ValueError("num_replicas > 1 requires batched_inference=True "
                             "(there is no inference service to shard otherwise)")
        if isinstance(routing, str) and routing not in ROUTING_POLICIES:
            raise ValueError(f"unknown routing policy {routing!r}; "
                             f"expected one of {ROUTING_POLICIES}")
        if scheduler not in SCHEDULERS:
            raise ValueError(f"unknown scheduler {scheduler!r}; expected one of {SCHEDULERS}")
        if scheduler == SCHEDULER_EVENT:
            if not batched_inference:
                raise ValueError("the event-driven scheduler requires batched_inference=True "
                                 "(workers must block on a shared InferenceService)")
            if flush_policy not in FLUSH_POLICIES:
                raise ValueError(f"unknown flush policy {flush_policy!r}; "
                                 f"expected one of {FLUSH_POLICIES}")
            if flush_policy == FLUSH_TIMEOUT and (flush_timeout_us is None or flush_timeout_us < 0):
                raise ValueError("the timeout flush policy requires a non-negative flush_timeout_us")
        self.num_workers = num_workers
        self.board_size = board_size
        self.num_simulations = num_simulations
        self.games_per_worker = games_per_worker
        self.max_moves = max_moves
        self.hidden = hidden
        self.profile = profile
        self.cost_config = cost_config
        self.seed = seed
        self.batched_inference = batched_inference
        self.leaf_batch = leaf_batch
        self.inference_max_batch = inference_max_batch
        self.num_replicas = num_replicas
        self.routing = routing
        self.scheduler = scheduler
        self.flush_policy = flush_policy
        self.flush_timeout_us = flush_timeout_us
        self.inference_service: Optional["InferenceService"] = None
        self.pool_scheduler: Optional[PoolScheduler] = None
        #: the shared accelerator all workers contend for
        self.device = GPUDevice()
        self.runs: List[WorkerRun] = []
        # Streaming trace store: every worker writes its own shard into one
        # store (either a shared writer passed in, or one owned by the pool).
        self._store = store
        self._owns_store = False
        self._streamed = False
        if self._store is None and trace_dir is not None:
            from ..tracedb.writer import StreamingTraceWriter
            self._store = StreamingTraceWriter(trace_dir, chunk_events=chunk_events)
            self._owns_store = True

    @property
    def streaming(self) -> bool:
        return self._store is not None

    @property
    def store(self) -> Optional["StreamingTraceWriter"]:
        return self._store

    def tracedb(self) -> "TraceDB":
        """Open the streamed trace store for querying/map-reduce analysis."""
        if self._store is None:
            raise ValueError("pool was not created with trace_dir/store; no trace store to open")
        from ..tracedb.store import TraceDB
        return TraceDB(str(self._store.directory))

    # ------------------------------------------------------------------ run
    def run(self, weights: Optional[List[np.ndarray]] = None) -> List[WorkerRun]:
        """Run every worker's self-play session; returns per-worker results."""
        if self.streaming and self._streamed:
            # A rerun restarts every worker clock at zero; appending it to the
            # same shards would double-count time in store-derived summaries.
            raise RuntimeError("this pool already streamed a run into its trace store; "
                               "create a new pool (or trace_dir) for another run")
        self.runs = []
        self.inference_service = None
        self.pool_scheduler = None
        if self.batched_inference:
            from .inference import InferenceService
            # One logical model serves every worker (with the same init seed
            # as the legacy per-worker networks its weights are identical),
            # sharded across num_replicas replicas: replica 0 shares the
            # pool's primary GPU, the rest bring their own devices.
            shared_network = PolicyValueNet(self.board_size, self.hidden,
                                            rng=np.random.default_rng(self.seed + 7))
            self.inference_service = InferenceService(
                shared_network,
                max_batch=self.inference_max_batch,
                num_replicas=self.num_replicas,
                routing=self.routing,
                primary_device=self.device,
                cost_config=self.cost_config,
                seed=self.seed,
            )
            if weights is not None:
                # Initial model placement: load without charging broadcast
                # time (clocks have not started).
                self.inference_service.update_weights(weights, charge=False)
        if self.scheduler == SCHEDULER_EVENT:
            # Build every worker first (same creation order as sequential, so
            # all RNG streams are identical), then interleave their stepwise
            # drivers on the shared virtual timeline.
            workers = [self._make_worker(index, weights) for index in range(self.num_workers)]
            drivers = [GameDriver(worker, self.games_per_worker) for worker, _ in workers]
            self.pool_scheduler = PoolScheduler(
                drivers, self.inference_service,
                flush_policy=self.flush_policy, flush_timeout_us=self.flush_timeout_us)
            self.pool_scheduler.run()
            self.runs = [self._finish_worker(worker, profiler, driver.result)
                         for (worker, profiler), driver in zip(workers, drivers)]
        else:
            for index in range(self.num_workers):
                worker, profiler = self._make_worker(index, weights)
                result = worker.play_games(self.games_per_worker)
                self.runs.append(self._finish_worker(worker, profiler, result))
        if self.streaming:
            self._streamed = True
            if self._owns_store:
                self._store.close()
        return self.runs

    def _make_worker(self, index: int, weights: Optional[List[np.ndarray]]
                     ) -> Tuple[SelfPlayWorker, Optional[Profiler]]:
        """Build one worker's system/engine/profiler stack (its "process")."""
        worker_name = f"selfplay_worker_{index}"
        system = System.create(
            seed=self.seed + 100 + index,
            config=self.cost_config,
            device=self.device,
            worker=worker_name,
        )
        system.cuda.default_stream = index
        engine = GraphEngine(system, flavor="tensorflow")
        if self.inference_service is not None:
            network = self.inference_service.network
        else:
            network = PolicyValueNet(self.board_size, self.hidden,
                                     rng=np.random.default_rng(self.seed + 7))
            if weights is not None:
                network.load_state_dict(weights)

        profiler: Optional[Profiler] = None
        if self.profile:
            profiler = Profiler(system, ProfilerConfig.full(), worker=worker_name,
                                store=self._store)
            profiler.attach(engine=engine)

        worker = SelfPlayWorker(
            system, engine, network,
            profiler=profiler,
            board_size=self.board_size,
            num_simulations=self.num_simulations,
            max_moves=self.max_moves,
            seed=self.seed + 1000 + index,
            leaf_batch=self.leaf_batch,
            inference=self.inference_service,
        )
        return worker, profiler

    def _finish_worker(self, worker: SelfPlayWorker, profiler: Optional[Profiler],
                       result: SelfPlayResult) -> WorkerRun:
        trace = profiler.finalize() if profiler is not None else None
        if self.streaming:
            # The trace lives in the store's shard; keep runs lightweight.
            trace = None
        return WorkerRun(worker=worker.system.worker, result=result, trace=trace,
                         total_time_us=worker.system.clock.now_us, system=worker.system)

    # ------------------------------------------------------------- reporting
    def traces(self) -> Dict[str, EventTrace]:
        return {run.worker: run.trace for run in self.runs if run.trace is not None}

    def all_examples(self):
        examples = []
        for run in self.runs:
            examples.extend(run.result.examples)
        return examples

    def collection_span_us(self) -> float:
        """Wall-clock span of the parallel collection phase (slowest worker)."""
        return max((run.total_time_us for run in self.runs), default=0.0)
