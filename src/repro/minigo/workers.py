"""Parallel self-play worker pool sharing a single GPU.

The paper's Minigo workload runs 16 self-play worker processes in parallel,
all submitting inference minibatches to one GPU (Section 4.3 / Appendix B.2).
Each worker here gets its own virtual clock, cost model, CUDA runtime and
CUPTI instance — its own process, in effect — while kernels land on a shared
:class:`~repro.hw.gpu.GPUDevice`, each worker on its own stream (its own CUDA
context).  Worker clocks share epoch zero, so the merged device timeline is
what an ``nvidia-smi`` sampler would observe during parallel data collection.

Two schedulers simulate the parallel collection phase:

* ``sequential`` (legacy): each worker runs to completion on its own
  virtual timeline.  A shared-service flush then almost always serves a
  single worker's wave, so cross-worker batching never materializes.
* ``event``: a :class:`PoolScheduler` interleaves all workers' stepwise
  :class:`~repro.minigo.selfplay.GameDriver`s in virtual-time order and
  serves the shared :class:`~repro.minigo.inference.InferenceService` once
  every runnable worker is blocked at an inference boundary — so one engine
  call batches leaves from many workers at the same virtual instant, the way
  a real inference server batches across client processes.  With several
  model replicas (``num_replicas > 1``) the scheduler additionally serves
  *full* batches eagerly, so free replicas start in-flight batches while the
  remaining workers keep running.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids an import cycle
    from ..tracedb.store import TraceDB
    from ..tracedb.writer import StreamingTraceWriter
    from .inference import InferenceService

from ..backend.graph import GraphEngine
from ..backend.layers import hard_update
from ..hw.costmodel import CostModelConfig
from ..hw.gpu import GPUDevice
from ..profiler.api import Profiler, ProfilerConfig
from ..profiler.events import EventTrace
# The event-driven PoolScheduler and its stats live in the env-agnostic
# rollout core since the stepwise-driver refactor; re-exported here (and in
# repro.minigo) so existing imports keep working.
from ..rollout.scheduler import PoolScheduler, SchedulerStats  # noqa: F401
from ..system import System
from .inference import (
    FLUSH_MAX_BATCH,
    FLUSH_POLICIES,
    FLUSH_TIMEOUT,
    ROUTING_POLICIES,
    ROUTING_ROUND_ROBIN,
    RoutingPolicy,
)
from .selfplay import GameDriver, PolicyValueNet, SelfPlayResult, SelfPlayWorker

#: Scheduler modes understood by :class:`SelfPlayPool`.
SCHEDULER_SEQUENTIAL = "sequential"
SCHEDULER_EVENT = "event"
SCHEDULERS = (SCHEDULER_SEQUENTIAL, SCHEDULER_EVENT)


@dataclass
class WorkerRun:
    """Output of one worker in the pool.

    ``trace`` is ``None`` when profiling is off or when the pool streams
    traces into a shared store (query them via :meth:`SelfPlayPool.tracedb`);
    ``system`` is ``None`` for runs reconstructed without a live system.
    """

    worker: str
    result: SelfPlayResult
    trace: Optional[EventTrace]
    total_time_us: float
    system: Optional[System] = field(repr=False, default=None)


class SelfPlayPool:
    """Pool of self-play workers that share one GPU device.

    Workers are simulated sequentially but on independent virtual timelines
    starting at zero, which is equivalent to running them in parallel on a
    machine with enough CPU cores (the paper uses one worker per core).
    """

    def __init__(
        self,
        num_workers: int = 16,
        *,
        board_size: int = 9,
        num_simulations: int = 16,
        games_per_worker: int = 1,
        max_moves: Optional[int] = None,
        hidden: tuple = (128, 128),
        profile: bool = True,
        cost_config: Optional[CostModelConfig] = None,
        seed: int = 0,
        trace_dir: Optional[str] = None,
        store: Optional["StreamingTraceWriter"] = None,
        chunk_events: int = 50_000,
        batched_inference: bool = False,
        leaf_batch: int = 1,
        inference_max_batch: int = 64,
        num_replicas: int = 1,
        routing: "str | RoutingPolicy" = ROUTING_ROUND_ROBIN,
        scheduler: str = SCHEDULER_SEQUENTIAL,
        flush_policy: str = FLUSH_MAX_BATCH,
        flush_timeout_us: Optional[float] = None,
        num_processes: Optional[int] = None,
        process_backend: str = "process",
        fault_plan=None,
        transposition: bool = False,
        cache_capacity: Optional[int] = None,
        cache_scope: str = "shared",
    ) -> None:
        """With ``batched_inference=True`` the pool creates one shared
        :class:`~repro.minigo.inference.InferenceService` holding
        ``num_replicas`` model replicas behind the ``routing`` policy
        (``round-robin``, ``least-loaded``, ``sticky``, or a
        :class:`~repro.minigo.inference.RoutingPolicy` instance); replica 0
        shares the pool's primary GPU, further replicas each model an
        additional inference GPU.  Every worker's MCTS collects up to
        ``leaf_batch`` in-flight leaves per wave for batched evaluation
        through the service.  At ``leaf_batch=1`` the batched path
        reproduces the legacy per-leaf game records move-for-move under
        identical seeds, and at ``num_replicas=1`` (any routing) the sharded
        service reproduces the single-replica timelines bit-for-bit.

        ``scheduler="event"`` (requires ``batched_inference``) replaces the
        run-each-worker-to-completion loop with a :class:`PoolScheduler`
        that interleaves all workers at wave granularity and serves the
        service under ``flush_policy`` (``max-batch``, ``timeout`` with
        ``flush_timeout_us``, or ``unbatched`` — the bit-for-bit
        determinism baseline), so engine calls batch leaves across
        workers; with several replicas the scheduler also serves full
        batches eagerly so free replicas overlap in-flight batches with
        still-running workers.

        ``num_processes`` (requires the event scheduler) shards the workers
        over that many real OS processes via :mod:`repro.parallel`: shards
        advance their drivers between serves while the parent merges their
        virtual timelines and runs the shared service — records, clocks,
        scheduler decisions and service stats are bit-for-bit those of the
        single-process event loop.  ``process_backend="inline"`` runs the
        shards in-process (CI/debugging).

        ``transposition`` turns on each worker's per-search MCTS
        transposition table; ``cache_capacity`` enables the shared
        service's LRU evaluation cache (requires ``batched_inference``) and
        makes every wave submission carry Zobrist position keys, with
        ``cache_scope`` choosing one service-wide cache or one per replica.
        Both default off, preserving today's runs bit-for-bit."""
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if num_replicas <= 0:
            raise ValueError("num_replicas must be positive")
        if num_replicas > 1 and not batched_inference:
            raise ValueError("num_replicas > 1 requires batched_inference=True "
                             "(there is no inference service to shard otherwise)")
        if isinstance(routing, str) and routing not in ROUTING_POLICIES:
            raise ValueError(f"unknown routing policy {routing!r}; "
                             f"expected one of {ROUTING_POLICIES}")
        if scheduler not in SCHEDULERS:
            raise ValueError(f"unknown scheduler {scheduler!r}; expected one of {SCHEDULERS}")
        if scheduler == SCHEDULER_EVENT:
            if not batched_inference:
                raise ValueError("the event-driven scheduler requires batched_inference=True "
                                 "(workers must block on a shared InferenceService)")
            if flush_policy not in FLUSH_POLICIES:
                raise ValueError(f"unknown flush policy {flush_policy!r}; "
                                 f"expected one of {FLUSH_POLICIES}")
            if flush_policy == FLUSH_TIMEOUT and (flush_timeout_us is None or flush_timeout_us < 0):
                raise ValueError("the timeout flush policy requires a non-negative flush_timeout_us")
        from ..rollout.evalcache import CACHE_SCOPES
        if cache_scope not in CACHE_SCOPES:
            raise ValueError(f"unknown cache scope {cache_scope!r}; "
                             f"expected one of {CACHE_SCOPES}")
        if cache_capacity is not None and not batched_inference:
            raise ValueError("cache_capacity requires batched_inference=True "
                             "(the evaluation cache lives in the shared service)")
        if num_processes is not None:
            from ..parallel.runner import BACKENDS
            if num_processes <= 0:
                raise ValueError("num_processes must be positive")
            if cache_capacity is not None:
                raise ValueError(
                    "num_processes cannot be combined with the service evaluation "
                    "cache: shards replay engine calls from their own pre-run "
                    "timelines, so parent-side cache hits would desynchronize the "
                    "shard replicas; run the cache single-process")
            if scheduler != SCHEDULER_EVENT:
                raise ValueError("num_processes requires the event scheduler "
                                 "(shards are merged at serve boundaries)")
            if store is not None:
                raise ValueError("num_processes cannot share a live store object "
                                 "across processes; pass trace_dir instead")
            if process_backend not in BACKENDS:
                raise ValueError(f"unknown process backend {process_backend!r}; "
                                 f"expected one of {BACKENDS}")
        self.num_workers = num_workers
        self.board_size = board_size
        self.num_simulations = num_simulations
        self.games_per_worker = games_per_worker
        self.max_moves = max_moves
        self.hidden = hidden
        self.profile = profile
        self.cost_config = cost_config
        self.seed = seed
        self.batched_inference = batched_inference
        self.leaf_batch = leaf_batch
        self.inference_max_batch = inference_max_batch
        self.num_replicas = num_replicas
        self.routing = routing
        self.scheduler = scheduler
        self.flush_policy = flush_policy
        self.flush_timeout_us = flush_timeout_us
        self.num_processes = num_processes
        self.process_backend = process_backend
        #: optional :class:`~repro.faults.plan.FaultPlan` for the multiprocess
        #: tier (shard crashes -> respawn + journal replay).  Excluded from
        #: :meth:`_child_config`: the parent injects faults, respawned shards
        #: must never re-inject them.
        self.fault_plan = fault_plan
        self.transposition = transposition
        self.cache_capacity = cache_capacity
        self.cache_scope = cache_scope
        self.trace_dir = trace_dir
        self.chunk_events = chunk_events
        self.inference_service: Optional["InferenceService"] = None
        self.pool_scheduler: Optional[PoolScheduler] = None
        #: the shared accelerator all workers contend for
        self.device = GPUDevice()
        self.runs: List[WorkerRun] = []
        # Streaming trace store: every worker writes its own shard into one
        # store (either a shared writer passed in, or one owned by the pool).
        self._store = store
        self._owns_store = False
        self._streamed = False
        if self._store is None and trace_dir is not None:
            from ..tracedb.writer import StreamingTraceWriter
            self._store = StreamingTraceWriter(trace_dir, chunk_events=chunk_events)
            self._owns_store = True

    @property
    def streaming(self) -> bool:
        return self._store is not None

    @property
    def store(self) -> Optional["StreamingTraceWriter"]:
        return self._store

    def tracedb(self) -> "TraceDB":
        """Open the streamed trace store for querying/map-reduce analysis."""
        if self._store is None:
            raise ValueError("pool was not created with trace_dir/store; no trace store to open")
        from ..tracedb.store import TraceDB
        return TraceDB(str(self._store.directory))

    # ------------------------------------------------------------------ run
    def run(self, weights: Optional[List[np.ndarray]] = None) -> List[WorkerRun]:
        """Run every worker's self-play session; returns per-worker results."""
        if self.streaming and self._streamed:
            # A rerun restarts every worker clock at zero; appending it to the
            # same shards would double-count time in store-derived summaries.
            raise RuntimeError("this pool already streamed a run into its trace store; "
                               "create a new pool (or trace_dir) for another run")
        self.runs = []
        self.inference_service = None
        self.pool_scheduler = None
        if self.num_processes is not None:
            return self._run_parallel(weights)
        if self.batched_inference:
            self.inference_service = self._build_service()
            if weights is not None:
                # Initial model placement: load without charging broadcast
                # time (clocks have not started).
                self.inference_service.update_weights(weights, charge=False)
        if self.scheduler == SCHEDULER_EVENT:
            # Build every worker first (same creation order as sequential, so
            # all RNG streams are identical), then interleave their stepwise
            # drivers on the shared virtual timeline.
            workers = [self._make_worker(index, weights) for index in range(self.num_workers)]
            drivers = [GameDriver(worker, self.games_per_worker) for worker, _ in workers]
            self.pool_scheduler = PoolScheduler(
                drivers, self.inference_service,
                flush_policy=self.flush_policy, flush_timeout_us=self.flush_timeout_us)
            self.pool_scheduler.run()
            self.runs = [self._finish_worker(worker, profiler, driver.result)
                         for (worker, profiler), driver in zip(workers, drivers)]
        else:
            for index in range(self.num_workers):
                worker, profiler = self._make_worker(index, weights)
                result = worker.play_games(self.games_per_worker)
                self.runs.append(self._finish_worker(worker, profiler, result))
        if self.streaming:
            self._streamed = True
            if self._owns_store:
                self._store.close()
        return self.runs

    def _build_service(self, service_factory=None) -> "InferenceService":
        """Build the shared service: one logical model, ``num_replicas`` shards.

        With the same init seed as the legacy per-worker networks the shared
        model's weights are identical; replica 0 shares the pool's primary
        GPU, further replicas each model an additional inference GPU.
        ``service_factory`` substitutes the class (the multiprocess path
        passes the parent-side mirror service).
        """
        from ..rollout.seeding import network_seed
        from .inference import InferenceService

        factory = service_factory if service_factory is not None else InferenceService
        shared_network = PolicyValueNet(self.board_size, self.hidden,
                                        rng=np.random.default_rng(network_seed(self.seed)))
        kwargs = {}
        if self.cache_capacity is not None:
            # Only passed when enabled, so the mirror-service factory (which
            # predates the cache and rejects it at the pool level) keeps its
            # original signature.
            kwargs.update(cache_capacity=self.cache_capacity,
                          cache_scope=self.cache_scope)
        return factory(
            shared_network,
            max_batch=self.inference_max_batch,
            num_replicas=self.num_replicas,
            routing=self.routing,
            primary_device=self.device,
            cost_config=self.cost_config,
            seed=self.seed,
            **kwargs,
        )

    def _child_config(self) -> dict:
        """Constructor kwargs a shard process rebuilds this pool from."""
        return dict(
            num_workers=self.num_workers,
            board_size=self.board_size,
            num_simulations=self.num_simulations,
            games_per_worker=self.games_per_worker,
            max_moves=self.max_moves,
            hidden=self.hidden,
            profile=self.profile,
            cost_config=self.cost_config,
            seed=self.seed,
            trace_dir=self.trace_dir,
            chunk_events=self.chunk_events,
            batched_inference=True,
            leaf_batch=self.leaf_batch,
            inference_max_batch=self.inference_max_batch,
            num_replicas=self.num_replicas,
            routing=self.routing,
            scheduler=SCHEDULER_EVENT,
            flush_policy=self.flush_policy,
            flush_timeout_us=self.flush_timeout_us,
            transposition=self.transposition,
        )

    def _run_parallel(self, weights: Optional[List[np.ndarray]]) -> List[WorkerRun]:
        """Run the pool sharded over ``num_processes`` OS processes.

        Shards build and advance the real worker stacks; the parent replays
        their timelines through proxy drivers under the real scheduler and
        the mirror service, so every scheduling/batching/routing decision —
        and therefore every record and clock — matches the sequential event
        loop bit-for-bit.
        """
        from functools import partial

        from ..parallel.proxy import MirrorInferenceService, ProxyDriver
        from ..parallel.runner import ParallelRunner, assign_workers
        from ..parallel.shard import ShardSpec

        config = self._child_config()
        specs = [ShardSpec(kind="selfplay", pool_config=config,
                           worker_indices=indices, weights=weights)
                 for indices in assign_workers(self.num_workers, self.num_processes)]
        runner = ParallelRunner(specs, backend=self.process_backend,
                                fault_plan=self.fault_plan)
        self.parallel_runner = runner
        try:
            service = self._build_service(
                service_factory=partial(MirrorInferenceService, runner=runner))
            if weights is not None:
                service.update_weights(weights, charge=False)
            self.inference_service = service
            segments = runner.build()
            proxies = [ProxyDriver(runner, index, f"selfplay_worker_{index}",
                                   service, segments[index])
                       for index in range(self.num_workers)]
            runner.attach(proxies)
            self.pool_scheduler = PoolScheduler(
                proxies, service,
                flush_policy=self.flush_policy, flush_timeout_us=self.flush_timeout_us)
            self.pool_scheduler.run()
            finals = runner.finalize()
        finally:
            runner.stop()
        self.runs = [WorkerRun(worker=f"selfplay_worker_{index}",
                               result=finals[index]["result"],
                               trace=finals[index]["trace"],
                               total_time_us=finals[index]["total_time_us"])
                     for index in range(self.num_workers)]
        if self.streaming:
            self._streamed = True
            if self._owns_store:
                # The shards already merged their trace shards; closing the
                # parent's (shard-less) writer just seals the store index.
                self._store.close()
        return self.runs

    def _make_worker(self, index: int, weights: Optional[List[np.ndarray]]
                     ) -> Tuple[SelfPlayWorker, Optional[Profiler]]:
        """Build one worker's system/engine/profiler stack (its "process")."""
        from ..rollout.seeding import network_seed, system_seed, worker_seed

        worker_name = f"selfplay_worker_{index}"
        system = System.create(
            seed=system_seed(self.seed, index),
            config=self.cost_config,
            device=self.device,
            worker=worker_name,
        )
        system.cuda.default_stream = index
        engine = GraphEngine(system, flavor="tensorflow")
        if self.inference_service is not None:
            network = self.inference_service.network
        else:
            network = PolicyValueNet(self.board_size, self.hidden,
                                     rng=np.random.default_rng(network_seed(self.seed)))
            if weights is not None:
                network.load_state_dict(weights)

        profiler: Optional[Profiler] = None
        if self.profile:
            profiler = Profiler(system, ProfilerConfig.full(), worker=worker_name,
                                store=self._store)
            profiler.attach(engine=engine)

        worker = SelfPlayWorker(
            system, engine, network,
            profiler=profiler,
            board_size=self.board_size,
            num_simulations=self.num_simulations,
            max_moves=self.max_moves,
            seed=worker_seed(self.seed, index),
            leaf_batch=self.leaf_batch,
            inference=self.inference_service,
            transposition=self.transposition,
            emit_state_keys=self.cache_capacity is not None,
        )
        return worker, profiler

    def _finish_worker(self, worker: SelfPlayWorker, profiler: Optional[Profiler],
                       result: SelfPlayResult) -> WorkerRun:
        trace = profiler.finalize() if profiler is not None else None
        if self.streaming:
            # The trace lives in the store's shard; keep runs lightweight.
            trace = None
        return WorkerRun(worker=worker.system.worker, result=result, trace=trace,
                         total_time_us=worker.system.clock.now_us, system=worker.system)

    # ------------------------------------------------------------- reporting
    def traces(self) -> Dict[str, EventTrace]:
        return {run.worker: run.trace for run in self.runs if run.trace is not None}

    def all_examples(self):
        examples = []
        for run in self.runs:
            examples.extend(run.result.examples)
        return examples

    def collection_span_us(self) -> float:
        """Wall-clock span of the parallel collection phase (slowest worker)."""
        return max((run.total_time_us for run in self.runs), default=0.0)
