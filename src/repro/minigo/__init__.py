"""Minigo scale-up workload: MCTS self-play, parallel workers, training rounds."""

from .mcts import MCTS, MCTSNode
from .selfplay import (
    OP_EXPAND_LEAF,
    OP_TREE_SEARCH,
    PolicyValueNet,
    SelfPlayExample,
    SelfPlayResult,
    SelfPlayWorker,
)
from .training import MinigoConfig, MinigoRoundResult, MinigoTraining
from .workers import SelfPlayPool, WorkerRun

__all__ = [
    "MCTS",
    "MCTSNode",
    "OP_EXPAND_LEAF",
    "OP_TREE_SEARCH",
    "PolicyValueNet",
    "SelfPlayExample",
    "SelfPlayResult",
    "SelfPlayWorker",
    "MinigoConfig",
    "MinigoRoundResult",
    "MinigoTraining",
    "SelfPlayPool",
    "WorkerRun",
]
