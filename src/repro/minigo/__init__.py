"""Minigo scale-up workload: MCTS self-play, parallel workers, training rounds."""

from .inference import InferenceClient, InferenceService, InferenceStats, InferenceTicket
from .mcts import MCTS, MCTSNode
from .selfplay import (
    OP_EXPAND_LEAF,
    OP_TREE_SEARCH,
    PolicyValueNet,
    SelfPlayExample,
    SelfPlayResult,
    SelfPlayWorker,
)
from .training import MinigoConfig, MinigoRoundResult, MinigoTraining
from .workers import SelfPlayPool, WorkerRun

__all__ = [
    "InferenceClient",
    "InferenceService",
    "InferenceStats",
    "InferenceTicket",
    "MCTS",
    "MCTSNode",
    "OP_EXPAND_LEAF",
    "OP_TREE_SEARCH",
    "PolicyValueNet",
    "SelfPlayExample",
    "SelfPlayResult",
    "SelfPlayWorker",
    "MinigoConfig",
    "MinigoRoundResult",
    "MinigoTraining",
    "SelfPlayPool",
    "WorkerRun",
]
