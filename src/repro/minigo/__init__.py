"""Minigo scale-up workload: MCTS self-play, parallel workers, training rounds."""

from .inference import (
    FLUSH_MAX_BATCH,
    FLUSH_POLICIES,
    FLUSH_TIMEOUT,
    FLUSH_UNBATCHED,
    BatchSizeStats,
    InferenceClient,
    InferenceService,
    InferenceStats,
    InferenceTicket,
)
from .mcts import MCTS, LeafEvalRequest, MCTSNode
from .selfplay import (
    OP_EXPAND_LEAF,
    OP_TREE_SEARCH,
    GameDriver,
    PolicyValueNet,
    SelfPlayExample,
    SelfPlayResult,
    SelfPlayWorker,
)
from .training import MinigoConfig, MinigoRoundResult, MinigoTraining
from .workers import (
    SCHEDULER_EVENT,
    SCHEDULER_SEQUENTIAL,
    SCHEDULERS,
    PoolScheduler,
    SchedulerStats,
    SelfPlayPool,
    WorkerRun,
)

__all__ = [
    "BatchSizeStats",
    "FLUSH_MAX_BATCH",
    "FLUSH_POLICIES",
    "FLUSH_TIMEOUT",
    "FLUSH_UNBATCHED",
    "InferenceClient",
    "InferenceService",
    "InferenceStats",
    "InferenceTicket",
    "LeafEvalRequest",
    "MCTS",
    "MCTSNode",
    "OP_EXPAND_LEAF",
    "OP_TREE_SEARCH",
    "GameDriver",
    "PolicyValueNet",
    "SelfPlayExample",
    "SelfPlayResult",
    "SelfPlayWorker",
    "MinigoConfig",
    "MinigoRoundResult",
    "MinigoTraining",
    "PoolScheduler",
    "SCHEDULER_EVENT",
    "SCHEDULER_SEQUENTIAL",
    "SCHEDULERS",
    "SchedulerStats",
    "SelfPlayPool",
    "WorkerRun",
]
