"""Monte-Carlo tree search guided by a policy/value network (AlphaGoZero-style).

Minigo's self-play workers expand a move tree in Python
(``mcts_tree_search`` in the paper's Figure 2) and evaluate leaf positions in
minibatches with neural-network inference (``expand_leaf``).  The search here
follows the PUCT formulation of AlphaGoZero: child selection by
``Q + U`` where ``U`` is proportional to the network prior and the parent
visit count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..sim.go import GoPosition, Move

#: Evaluates a batch of positions -> (policy priors [N, num_moves], values [N]).
NetworkEvaluator = Callable[[np.ndarray], Tuple[np.ndarray, np.ndarray]]


@dataclass
class MCTSNode:
    """One node of the search tree."""

    position: GoPosition
    parent: Optional["MCTSNode"] = None
    move: Move = None                     #: move that led here from the parent
    prior: float = 0.0
    visit_count: int = 0
    total_value: float = 0.0
    children: Dict[int, "MCTSNode"] = field(default_factory=dict)
    is_expanded: bool = False

    @property
    def mean_value(self) -> float:
        return self.total_value / self.visit_count if self.visit_count > 0 else 0.0

    def ucb_score(self, c_puct: float) -> float:
        if self.parent is None:
            return self.mean_value
        exploration = c_puct * self.prior * math.sqrt(self.parent.visit_count) / (1 + self.visit_count)
        return self.mean_value + exploration


class MCTS:
    """PUCT tree search over Go positions."""

    def __init__(
        self,
        evaluator: NetworkEvaluator,
        *,
        num_simulations: int = 32,
        c_puct: float = 1.5,
        dirichlet_alpha: float = 0.3,
        exploration_fraction: float = 0.25,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if num_simulations <= 0:
            raise ValueError("num_simulations must be positive")
        self.evaluator = evaluator
        self.num_simulations = num_simulations
        self.c_puct = c_puct
        self.dirichlet_alpha = dirichlet_alpha
        self.exploration_fraction = exploration_fraction
        self.rng = rng if rng is not None else np.random.default_rng(0)

    # ----------------------------------------------------------------- search
    def search(self, position: GoPosition, *, add_noise: bool = True) -> MCTSNode:
        """Run ``num_simulations`` simulations from ``position`` and return the root."""
        root = MCTSNode(position=position)
        self._expand(root, add_noise=add_noise)
        for _ in range(self.num_simulations):
            node = root
            # Selection: descend to a leaf.
            while node.is_expanded and node.children:
                node = max(node.children.values(), key=lambda child: child.ucb_score(self.c_puct))
            # Expansion / evaluation.
            if node.position.is_over:
                value = node.position.result()
                # result() is from Black's perspective; convert to the player to move.
                value = value if node.position.to_play == 1 else -value
            else:
                value = self._expand(node, add_noise=False)
            self._backup(node, value)
        return root

    def _expand(self, node: MCTSNode, *, add_noise: bool) -> float:
        """Evaluate the node with the network and create its children."""
        features = node.position.features()[None, :]
        priors, values = self.evaluator(features)
        priors = np.asarray(priors[0], dtype=np.float64)
        value = float(values[0])

        legal = node.position.legal_moves()
        legal_indices = [node.position.move_to_index(move) for move in legal]
        masked = np.zeros_like(priors)
        masked[legal_indices] = np.maximum(priors[legal_indices], 1e-8)
        masked /= masked.sum()

        if add_noise and len(legal_indices) > 1:
            noise = self.rng.dirichlet([self.dirichlet_alpha] * len(legal_indices))
            masked[legal_indices] = (
                (1 - self.exploration_fraction) * masked[legal_indices]
                + self.exploration_fraction * noise
            )

        for move, index in zip(legal, legal_indices):
            node.children[index] = MCTSNode(
                position=node.position.play(move),
                parent=node,
                move=move,
                prior=float(masked[index]),
            )
        node.is_expanded = True
        return value

    @staticmethod
    def _backup(node: MCTSNode, value: float) -> None:
        """Propagate the leaf value up the tree, flipping sign per ply."""
        current: Optional[MCTSNode] = node
        sign = 1.0
        while current is not None:
            current.visit_count += 1
            current.total_value += sign * value
            sign = -sign
            current = current.parent

    # ------------------------------------------------------------- move choice
    def policy_from_visits(self, root: MCTSNode, *, temperature: float = 1.0) -> np.ndarray:
        """Normalised visit-count distribution over all moves (including pass)."""
        size = root.position.size
        policy = np.zeros(size * size + 1, dtype=np.float64)
        for index, child in root.children.items():
            policy[index] = child.visit_count
        if policy.sum() == 0:
            policy[-1] = 1.0
            return policy
        if temperature <= 1e-6:
            best = int(np.argmax(policy))
            one_hot = np.zeros_like(policy)
            one_hot[best] = 1.0
            return one_hot
        policy = policy ** (1.0 / temperature)
        return policy / policy.sum()

    def choose_move(self, root: MCTSNode, *, temperature: float = 1.0) -> Move:
        policy = self.policy_from_visits(root, temperature=temperature)
        index = int(self.rng.choice(len(policy), p=policy))
        return root.position.index_to_move(index)
