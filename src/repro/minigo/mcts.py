"""Monte-Carlo tree search guided by a policy/value network (AlphaGoZero-style).

Minigo's self-play workers expand a move tree in Python
(``mcts_tree_search`` in the paper's Figure 2) and evaluate leaf positions in
minibatches with neural-network inference (``expand_leaf``).  The search here
follows the PUCT formulation of AlphaGoZero: child selection by
``Q + U`` where ``U`` is proportional to the network prior and the parent
visit count.

With ``leaf_batch > 1`` the search runs in *waves*: up to ``leaf_batch``
leaves are selected per wave under a virtual loss (each in-flight leaf is
temporarily scored as a loss along its path, steering later selections away
from it), then evaluated in one batched network call and backed up together.
A wave of one leaf applies and removes its virtual loss before any other
selection happens, so ``leaf_batch=1`` reproduces the classic per-leaf search
decision-for-decision.

The search is resumable: :meth:`MCTS.search_steps` is a generator that
*yields* a :class:`LeafEvalRequest` at every inference boundary instead of
calling the evaluator synchronously, so an external scheduler can suspend a
worker mid-search, batch its pending leaves with other workers' requests, and
resume it once results land.  :meth:`MCTS.search` is the synchronous driver
of that generator and behaves exactly as before.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..sim.go import GoPosition, Move

#: Evaluates a batch of positions -> (policy priors [N, num_moves], values [N]).
NetworkEvaluator = Callable[[np.ndarray], Tuple[np.ndarray, np.ndarray]]


class LeafEvalRequest:
    """One pending leaf-evaluation ticket yielded by :meth:`MCTS.search_steps`.

    The generator suspends after yielding a request; the driver evaluates
    ``features`` however it likes (synchronously, or queued on a shared
    inference service) and calls :meth:`fulfill` before resuming the search.
    """

    __slots__ = ("features", "state_keys", "priors", "values")

    def __init__(self, features: np.ndarray,
                 state_keys: Optional[List[int]] = None) -> None:
        self.features = features
        #: per-row position keys (Zobrist transposition keys), attached when
        #: the search emits them for the service-side evaluation cache
        self.state_keys = state_keys
        self.priors: Optional[np.ndarray] = None
        self.values: Optional[np.ndarray] = None

    @property
    def num_rows(self) -> int:
        return int(self.features.shape[0])

    @property
    def done(self) -> bool:
        return self.priors is not None

    def fulfill(self, priors: np.ndarray, values: np.ndarray) -> None:
        self.priors = priors
        self.values = values

    def results(self) -> Tuple[np.ndarray, np.ndarray]:
        if not self.done:
            raise RuntimeError("leaf evaluation request resumed before being fulfilled")
        assert self.priors is not None and self.values is not None
        return self.priors, self.values


class MCTSNode:
    """One node of the search tree.

    Child positions are **materialized lazily**: expansion records only the
    (parent, move, prior) triple, and :attr:`position` replays the move on
    the parent's board the first time it is read.  Selection touches only
    visit counts and priors, so the vast majority of children — the ones a
    search never descends into — never pay for a board copy or legality
    bookkeeping at all.  Game records are unchanged: boards carry no RNG,
    and every node the search *does* visit materializes the identical
    position the eager path would have built (pinned by
    ``tests/test_go_oracle.py``).
    """

    __slots__ = ("_position", "parent", "move", "prior", "visit_count",
                 "total_value", "children", "is_expanded", "virtual_loss")

    def __init__(
        self,
        position: Optional[GoPosition] = None,
        parent: Optional["MCTSNode"] = None,
        move: Move = None,                #: move that led here from the parent
        prior: float = 0.0,
        visit_count: int = 0,
        total_value: float = 0.0,
        children: Optional[Dict[int, "MCTSNode"]] = None,
        is_expanded: bool = False,
        virtual_loss: int = 0,            #: in-flight selections counted as losses
    ) -> None:
        if position is None and parent is None:
            raise ValueError("a node needs a position or a parent to derive one from")
        self._position = position
        self.parent = parent
        self.move = move
        self.prior = prior
        self.visit_count = visit_count
        self.total_value = total_value
        self.children = {} if children is None else children
        self.is_expanded = is_expanded
        self.virtual_loss = virtual_loss

    @property
    def position(self) -> GoPosition:
        position = self._position
        if position is None:
            position = self.parent.position.play(self.move)
            self._position = position
        return position

    @property
    def has_position(self) -> bool:
        """True once the position has been materialized (testing hook)."""
        return self._position is not None

    @property
    def mean_value(self) -> float:
        return self.total_value / self.visit_count if self.visit_count > 0 else 0.0

    def ucb_score(self, c_puct: float) -> float:
        if self.parent is None:
            return self.mean_value
        # total_value is from this node's own to-play perspective (backup
        # flips sign per ply), so the parent choosing among children must
        # negate it; in-flight virtual losses count as parent-perspective
        # losses, steering concurrent wave selections apart.
        visits = self.visit_count + self.virtual_loss
        mean = (-self.total_value - self.virtual_loss) / visits if visits > 0 else 0.0
        parent_visits = self.parent.visit_count + self.parent.virtual_loss
        exploration = c_puct * self.prior * math.sqrt(parent_visits) / (1 + visits)
        return mean + exploration


class MCTS:
    """PUCT tree search over Go positions."""

    #: When True, expansion materializes every child's position immediately
    #: (the pre-optimization behaviour).  The wall-clock benchmark flips this
    #: to reproduce the old allocation pattern; searches are decision-
    #: identical either way (boards carry no RNG).
    eager_child_positions: bool = False

    def __init__(
        self,
        evaluator: NetworkEvaluator,
        *,
        num_simulations: int = 32,
        c_puct: float = 1.5,
        dirichlet_alpha: float = 0.3,
        exploration_fraction: float = 0.25,
        leaf_batch: int = 1,
        rng: Optional[np.random.Generator] = None,
        transposition: bool = False,
        emit_state_keys: bool = False,
    ) -> None:
        """``transposition=True`` keeps a per-search table of raw network
        outputs keyed by :meth:`GoPosition.transposition_key`, so a position
        reached again through a different move order is finished in-wave
        from the stored (priors, value) instead of joining the
        :class:`LeafEvalRequest` — selection, virtual-loss accounting and
        backup are otherwise unchanged, and ``transposition=False``
        reproduces today's searches bit for bit.  ``emit_state_keys=True``
        attaches per-row transposition keys to every request, feeding the
        service-side evaluation cache across searches and games."""
        if num_simulations <= 0:
            raise ValueError("num_simulations must be positive")
        if leaf_batch <= 0:
            raise ValueError("leaf_batch must be positive")
        self.evaluator = evaluator
        self.num_simulations = num_simulations
        self.c_puct = c_puct
        self.dirichlet_alpha = dirichlet_alpha
        self.exploration_fraction = exploration_fraction
        self.leaf_batch = leaf_batch
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.transposition = transposition
        self.emit_state_keys = emit_state_keys
        #: cumulative leaves answered from transposition tables (all searches)
        self.transposition_hits = 0

    # ----------------------------------------------------------------- search
    def search(self, position: GoPosition, *, add_noise: bool = True) -> MCTSNode:
        """Run ``num_simulations`` simulations from ``position`` and return the root."""
        steps = self.search_steps(position, add_noise=add_noise)
        while True:
            try:
                request = steps.send(None)
            except StopIteration as stop:
                return stop.value
            priors, values = self.evaluator(request.features)
            request.fulfill(priors, values)

    def search_steps(self, position: GoPosition, *, add_noise: bool = True):
        """Resumable wave search: a generator yielding :class:`LeafEvalRequest`.

        Each yield is an inference boundary — the caller evaluates the
        request's features (synchronously or through a shared batched
        service), calls :meth:`LeafEvalRequest.fulfill`, and resumes the
        generator.  All RNG draws happen in the same order as :meth:`search`,
        so driving the generator with a synchronous evaluator reproduces the
        classic search decision-for-decision.  Returns the root node via
        ``StopIteration.value``.

        Thin wrapper over :class:`SearchCursor`, the explicit-state (and
        therefore picklable) form of the same state machine.
        """
        cursor = SearchCursor(self, position, add_noise=add_noise)
        while cursor.request is not None:
            yield cursor.request
            cursor.advance()
        return cursor.root

    # -------------------------------------------------------------- pickling
    def __getstate__(self) -> dict:
        # The evaluator is a bound method into a live worker stack (engine,
        # system, clocks); a restored search must re-attach its own.
        state = self.__dict__.copy()
        state["evaluator"] = None
        return state

    def _select_wave(self, root: MCTSNode, target: int
                     ) -> Tuple[List[Tuple[MCTSNode, Optional[float]]], List[MCTSNode]]:
        """Select up to ``target`` leaves under virtual loss.

        Returns ``(wave, pending)`` where ``wave`` is (leaf, terminal value or
        None) in selection order and ``pending`` the subset needing network
        evaluation."""
        wave: List[Tuple[MCTSNode, Optional[float]]] = []
        pending: List[MCTSNode] = []
        pending_ids: set = set()
        c_puct = self.c_puct

        def ucb_key(child: MCTSNode) -> float:
            return child.ucb_score(c_puct)

        for _ in range(target):
            node = root
            # Selection: descend to a leaf.
            while node.is_expanded and node.children:
                node = max(node.children.values(), key=ucb_key)
            if node.position.is_over:
                value = node.position.result()
                # result() is from Black's perspective; convert to the player to move.
                value = value if node.position.to_play == 1 else -value
                wave.append((node, value))
                self._add_virtual_loss(node)
                continue
            if id(node) in pending_ids:
                # Virtual loss could not steer the search away from an
                # already-selected leaf (tiny tree); flush what we have.
                break
            pending_ids.add(id(node))
            pending.append(node)
            wave.append((node, None))
            self._add_virtual_loss(node)
        return wave, pending

    def _finish_wave(self, wave: List[Tuple[MCTSNode, Optional[float]]],
                     evaluated: Dict[int, Tuple[np.ndarray, float]]) -> int:
        """Revert virtual losses, expand evaluated leaves, back values up."""
        for node, value in wave:
            self._remove_virtual_loss(node)
            if value is None:
                node_priors, value = evaluated[id(node)]
                self._expand_with_priors(node, node_priors, add_noise=False)
            self._backup(node, value)
        return len(wave)

    @staticmethod
    def _add_virtual_loss(node: MCTSNode) -> None:
        current: Optional[MCTSNode] = node
        while current is not None:
            current.virtual_loss += 1
            current = current.parent

    @staticmethod
    def _remove_virtual_loss(node: MCTSNode) -> None:
        current: Optional[MCTSNode] = node
        while current is not None:
            current.virtual_loss -= 1
            current = current.parent

    def _expand_with_priors(self, node: MCTSNode, priors: np.ndarray, *, add_noise: bool) -> None:
        """Create the node's children from an already-computed prior row.

        Children are created *without* positions: a child's board is only
        materialized if a later simulation actually descends into it (see
        :class:`MCTSNode`), which skips the dominant cost of expansion — one
        board copy plus capture bookkeeping per legal move.
        """
        position = node.position
        legal = position.legal_moves()
        move_to_index = position.move_to_index
        legal_indices = [move_to_index(move) for move in legal]
        masked = np.zeros_like(priors)
        masked[legal_indices] = np.maximum(priors[legal_indices], 1e-8)
        masked /= masked.sum()

        if add_noise and len(legal_indices) > 1:
            noise = self.rng.dirichlet([self.dirichlet_alpha] * len(legal_indices))
            masked[legal_indices] = (
                (1 - self.exploration_fraction) * masked[legal_indices]
                + self.exploration_fraction * noise
            )

        eager = self.eager_child_positions
        children = node.children
        for move, index in zip(legal, legal_indices):
            child = MCTSNode(
                position=position.play(move) if eager else None,
                parent=node,
                move=move,
                prior=float(masked[index]),
            )
            children[index] = child
        node.is_expanded = True

    @staticmethod
    def _backup(node: MCTSNode, value: float) -> None:
        """Propagate the leaf value up the tree, flipping sign per ply."""
        current: Optional[MCTSNode] = node
        sign = 1.0
        while current is not None:
            current.visit_count += 1
            current.total_value += sign * value
            sign = -sign
            current = current.parent

    # ------------------------------------------------------------- move choice
    def policy_from_visits(self, root: MCTSNode, *, temperature: float = 1.0) -> np.ndarray:
        """Normalised visit-count distribution over all moves (including pass)."""
        size = root.position.size
        policy = np.zeros(size * size + 1, dtype=np.float64)
        for index, child in root.children.items():
            policy[index] = child.visit_count
        if policy.sum() == 0:
            policy[-1] = 1.0
            return policy
        if temperature <= 1e-6:
            best = int(np.argmax(policy))
            one_hot = np.zeros_like(policy)
            one_hot[best] = 1.0
            return one_hot
        sharpened = policy ** (1.0 / temperature)
        total = sharpened.sum()
        if total == 0 or not np.isfinite(total):
            # Sharpening under/overflowed (very low temperature on a lopsided
            # visit distribution); fall back to the argmax one-hot.
            one_hot = np.zeros_like(policy)
            one_hot[int(np.argmax(policy))] = 1.0
            return one_hot
        return sharpened / total

    def choose_move(self, root: MCTSNode, *, temperature: float = 1.0) -> Move:
        policy = self.policy_from_visits(root, temperature=temperature)
        index = int(self.rng.choice(len(policy), p=policy))
        return root.position.index_to_move(index)


class SearchCursor:
    """Explicit-state resumable search: the picklable form of ``search_steps``.

    Holds the suspended search between inference boundaries as plain data
    (root tree, outstanding wave, pending request) instead of a live
    generator frame, so a mid-search driver can be snapshotted with
    ``pickle`` and resumed on a fresh worker stack.  :meth:`advance` consumes
    the fulfilled :attr:`request` and runs until the next boundary;
    RNG draws and tree decisions happen in exactly the order the generator
    produced them (``search_steps`` is now a thin wrapper over this class).
    """

    __slots__ = ("mcts", "root", "add_noise", "remaining", "wave", "pending",
                 "request", "_at_root", "table", "table_hits", "_pending_hits")

    def __init__(self, mcts: MCTS, position: GoPosition, *, add_noise: bool = True) -> None:
        self.mcts = mcts
        self.root = MCTSNode(position=position)
        self.add_noise = add_noise
        self.remaining = mcts.num_simulations
        self.wave: Optional[List[Tuple[MCTSNode, Optional[float]]]] = None
        self.pending: Optional[List[MCTSNode]] = None
        #: per-search transposition table: Zobrist key -> raw (priors64, value)
        self.table: Optional[Dict[int, Tuple[np.ndarray, float]]] = (
            {} if mcts.transposition else None)
        self.table_hits = 0
        #: table entries for the current wave's hit leaves, merged into the
        #: evaluated results when the outstanding request is fulfilled
        self._pending_hits: Optional[Dict[int, Tuple[np.ndarray, float]]] = None
        #: The outstanding inference boundary; None once the search completed.
        self.request: Optional[LeafEvalRequest] = LeafEvalRequest(
            position.features()[None, :],
            [position.transposition_key()] if mcts.emit_state_keys else None)
        self._at_root = True

    @property
    def done(self) -> bool:
        return self.request is None

    def advance(self) -> Optional[LeafEvalRequest]:
        """Consume the fulfilled request; run to the next boundary (or done)."""
        mcts = self.mcts
        priors, values = self.request.results()
        if self._at_root:
            self._at_root = False
            root_priors = np.asarray(priors[0], dtype=np.float64)
            if self.table is not None:
                self.table[self.root.position.transposition_key()] = (
                    root_priors, float(values[0]))
            mcts._expand_with_priors(self.root, root_priors,
                                     add_noise=self.add_noise)
        else:
            # One dtype conversion per wave; per-leaf rows are views into
            # it, bit-identical to converting each row on its own.
            priors64 = np.asarray(priors, dtype=np.float64)
            evaluated = {id(node): (priors64[i], float(values[i]))
                         for i, node in enumerate(self.pending)}
            if self.table is not None:
                for i, node in enumerate(self.pending):
                    self.table[node.position.transposition_key()] = evaluated[id(node)]
                if self._pending_hits:
                    evaluated.update(self._pending_hits)
            self.remaining -= mcts._finish_wave(self.wave, evaluated)
        self.request = None
        self.wave = None
        self.pending = None
        self._pending_hits = None
        while self.remaining > 0:
            wave, pending = mcts._select_wave(self.root, min(mcts.leaf_batch, self.remaining))
            hits: Optional[Dict[int, Tuple[np.ndarray, float]]] = None
            if self.table is not None and pending:
                # Transposition pass: leaves whose position was already
                # evaluated this search (through any move order) are finished
                # in-wave from the stored raw outputs; only the misses join
                # the network request.
                hits = {}
                misses: List[MCTSNode] = []
                for node in pending:
                    entry = self.table.get(node.position.transposition_key())
                    if entry is not None:
                        hits[id(node)] = entry
                    else:
                        misses.append(node)
                if hits:
                    self.table_hits += len(hits)
                    mcts.transposition_hits += len(hits)
                pending = misses
            if pending:
                self.wave = wave
                self.pending = pending
                self._pending_hits = hits or None
                self.request = LeafEvalRequest(
                    np.stack([node.position.features() for node in pending]),
                    [node.position.transposition_key() for node in pending]
                    if mcts.emit_state_keys else None)
                return self.request
            self.remaining -= mcts._finish_wave(wave, hits or {})
        return None

    def __getstate__(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)
