"""The full Minigo training round: self-play, SGD updates, evaluation.

One *generation* of Minigo training (Appendix B.2.2 of the paper) consists of
three phases:

1. **Self-play** — the current model plays games against itself across a pool
   of parallel worker processes, producing (position, visit-distribution,
   outcome) training examples.
2. **SGD updates** — a trainer process updates the policy/value network on
   the collected examples, producing a candidate model.
3. **Evaluation** — the candidate plays the current model; the winner becomes
   the model of the next generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..backend import functional as F
from ..backend.autodiff import Tape
from ..backend.context import use_engine
from ..backend.graph import GraphEngine
from ..backend.optimizers import Adam
from ..backend.tensor import Tensor
from ..hw.costmodel import CostModelConfig
from ..hw.gpu import GPUDevice
from ..hw.nvidia_smi import UtilizationReport, sample_utilization
from ..profiler.api import Profiler, ProfilerConfig
from ..profiler.events import EventTrace
from ..sim.go import GoPosition
from ..system import System
from .inference import InferenceService, InferenceStats
from .mcts import MCTS
from .selfplay import PolicyValueNet, SelfPlayExample, SelfPlayWorker
from .workers import SCHEDULER_SEQUENTIAL, SchedulerStats, SelfPlayPool, WorkerRun


@dataclass
class MinigoRoundResult:
    """Everything produced by one Minigo training round."""

    worker_runs: List[WorkerRun]
    trainer_trace: Optional[EventTrace]
    trainer_time_us: float
    evaluation_trace: Optional[EventTrace]
    evaluation_time_us: float
    candidate_wins: int
    evaluation_games: int
    candidate_accepted: bool
    losses: List[float] = field(default_factory=list)
    device: Optional[GPUDevice] = None
    #: Set when the round streamed every phase's trace into a TraceDB store.
    trace_dir: Optional[str] = None
    #: Batching behaviour of the self-play phase's shared service (None when
    #: batched inference is off).
    selfplay_inference_stats: Optional[InferenceStats] = None
    #: Batching behaviour of the candidate-evaluation phase's shared service.
    evaluation_inference_stats: Optional[InferenceStats] = None
    #: Event-loop counters of the self-play phase (event scheduler only).
    scheduler_stats: Optional[SchedulerStats] = None
    #: Per-replica batching stats of the self-play service (index-aligned;
    #: None when batched inference is off).
    selfplay_replica_stats: Optional[List[InferenceStats]] = None
    #: Virtual time to broadcast the round's outgoing weights to every
    #: inference replica (0.0 without batched inference).  Reported for
    #: between-round accounting; collection-phase clocks restart at zero
    #: each round, so the broadcast does not delay later rounds' timelines.
    weight_broadcast_us: float = 0.0

    def traces(self) -> Dict[str, EventTrace]:
        traces = {run.worker: run.trace for run in self.worker_runs if run.trace is not None}
        if self.trainer_trace is not None:
            traces["trainer"] = self.trainer_trace
        if self.evaluation_trace is not None:
            traces["evaluate_candidate_model"] = self.evaluation_trace
        return traces

    def utilization(self, *, sample_period_us: float = 250_000.0) -> UtilizationReport:
        """nvidia-smi style utilization over the parallel data-collection window."""
        if self.device is None:
            raise ValueError("no device recorded for this round")
        window_end = max((run.total_time_us for run in self.worker_runs), default=0.0)
        return sample_utilization(self.device, window_end_us=window_end,
                                  sample_period_us=sample_period_us)


@dataclass
class MinigoConfig:
    """Scale parameters of one training round (defaults are reproduction-sized)."""

    num_workers: int = 16
    board_size: int = 5
    num_simulations: int = 8
    games_per_worker: int = 1
    max_moves: Optional[int] = None
    hidden: Tuple[int, int] = (128, 128)
    sgd_steps: int = 32
    sgd_batch_size: int = 32
    learning_rate: float = 1e-2
    evaluation_games: int = 2
    acceptance_threshold: float = 0.55
    profile: bool = True
    seed: int = 0
    #: Route self-play leaf evaluation through one shared batched
    #: InferenceService instead of per-worker engines calling per leaf.
    batched_inference: bool = False
    #: In-flight leaves each MCTS wave collects per batched evaluation
    #: (1 reproduces the legacy per-leaf search decision-for-decision).
    leaf_batch: int = 1
    #: Largest row count the inference service packs into one engine call.
    inference_max_batch: int = 64
    #: Number of model replicas the inference service shards across (each
    #: replica beyond the first models an additional inference GPU).
    num_replicas: int = 1
    #: How batches are routed to replicas: "round-robin", "least-loaded" or
    #: "sticky" (cache-affinity: each batch host pins to one replica).
    routing: str = "round-robin"
    #: Self-play execution model: "sequential" runs each worker to
    #: completion on its own timeline; "event" interleaves all workers at
    #: wave granularity so the shared service batches across workers
    #: (requires batched_inference).
    scheduler: str = SCHEDULER_SEQUENTIAL
    #: How the event-driven scheduler departs batches: "max-batch" (wait
    #: until full or everyone blocks), "timeout" (partial batches depart
    #: flush_timeout_us after their first request), or "unbatched" (one
    #: ticket per call — the determinism baseline).
    flush_policy: str = "max-batch"
    flush_timeout_us: Optional[float] = None
    #: When set, every phase streams its trace into one TraceDB store
    #: (per-worker shards) instead of keeping whole traces in memory.  Each
    #: round gets its own ``round_NNN`` store under this directory — worker
    #: clocks restart at zero every round, so rounds must not share shards.
    trace_dir: Optional[str] = None


class MinigoTraining:
    """Drives one (or more) Minigo training rounds."""

    def __init__(self, config: Optional[MinigoConfig] = None,
                 cost_config: Optional[CostModelConfig] = None) -> None:
        self.config = config if config is not None else MinigoConfig()
        self.cost_config = cost_config
        rng = np.random.default_rng(self.config.seed + 7)
        self.current_weights = PolicyValueNet(self.config.board_size, self.config.hidden,
                                              rng=rng).state_dict()
        self._round_counter = 0

    # ------------------------------------------------------------------ round
    def run_round(self) -> MinigoRoundResult:
        cfg = self.config
        # One shared streaming store for every phase's shards (when enabled),
        # in a fresh per-round directory so earlier rounds stay readable.
        store = None
        round_dir: Optional[str] = None
        if cfg.trace_dir is not None and cfg.profile:
            import os
            from ..tracedb.writer import StreamingTraceWriter
            round_dir = os.path.join(cfg.trace_dir, f"round_{self._round_counter:03d}")
            self._round_counter += 1
            store = StreamingTraceWriter(round_dir)
        # Phase 1: parallel self-play data collection.
        pool = SelfPlayPool(
            cfg.num_workers,
            board_size=cfg.board_size,
            num_simulations=cfg.num_simulations,
            games_per_worker=cfg.games_per_worker,
            max_moves=cfg.max_moves,
            hidden=cfg.hidden,
            profile=cfg.profile,
            cost_config=self.cost_config,
            seed=cfg.seed,
            store=store,
            batched_inference=cfg.batched_inference,
            leaf_batch=cfg.leaf_batch,
            inference_max_batch=cfg.inference_max_batch,
            num_replicas=cfg.num_replicas,
            routing=cfg.routing,
            scheduler=cfg.scheduler,
            flush_policy=cfg.flush_policy,
            flush_timeout_us=cfg.flush_timeout_us,
        )
        runs = pool.run(self.current_weights)
        examples = pool.all_examples()

        # Phase 2: SGD updates on a trainer process (shares the same GPU).
        candidate_weights, losses, trainer_trace, trainer_time = self._train_candidate(
            examples, pool.device, store)

        # Phase 3: evaluation games between current and candidate models.
        wins, eval_trace, eval_time, eval_stats = self._evaluate_candidate(
            candidate_weights, pool.device, store)
        if store is not None:
            store.close()
        accepted = wins / max(cfg.evaluation_games, 1) >= cfg.acceptance_threshold
        if accepted:
            self.current_weights = candidate_weights

        # Propagate the round's outgoing weights to every inference replica
        # and record the virtual broadcast span.  The cost is *reported*
        # (weight_broadcast_us), not enforced on later rounds: each round
        # builds a fresh pool whose clocks restart at zero, with the weights
        # pre-placed before collection starts (update_weights(charge=False)).
        broadcast_us = 0.0
        if pool.inference_service is not None:
            broadcast_us = pool.inference_service.update_weights(self.current_weights)

        return MinigoRoundResult(
            worker_runs=runs,
            trainer_trace=trainer_trace,
            trainer_time_us=trainer_time,
            evaluation_trace=eval_trace,
            evaluation_time_us=eval_time,
            candidate_wins=wins,
            evaluation_games=cfg.evaluation_games,
            candidate_accepted=accepted,
            losses=losses,
            device=pool.device,
            trace_dir=round_dir,
            selfplay_inference_stats=(pool.inference_service.stats
                                      if pool.inference_service is not None else None),
            evaluation_inference_stats=eval_stats,
            scheduler_stats=(pool.pool_scheduler.stats
                             if pool.pool_scheduler is not None else None),
            selfplay_replica_stats=(
                [replica.stats for replica in pool.inference_service.replicas]
                if pool.inference_service is not None else None),
            weight_broadcast_us=broadcast_us,
        )

    # ----------------------------------------------------------------- phase 2
    def _train_candidate(self, examples: List[SelfPlayExample], device: GPUDevice, store=None):
        cfg = self.config
        system = System.create(seed=cfg.seed + 5, config=self.cost_config,
                               device=device, worker="trainer")
        system.cuda.default_stream = cfg.num_workers + 1
        engine = GraphEngine(system, flavor="tensorflow")
        profiler: Optional[Profiler] = None
        if cfg.profile:
            profiler = Profiler(system, ProfilerConfig.full(), worker="trainer", store=store)
            profiler.attach(engine=engine)
            profiler.set_phase("sgd_updates")

        rng = np.random.default_rng(cfg.seed + 11)
        losses: List[float] = []
        with use_engine(engine):
            network = PolicyValueNet(cfg.board_size, cfg.hidden, rng=np.random.default_rng(cfg.seed + 7))
            network.load_state_dict(self.current_weights)
            optimizer = Adam(network.parameters(), lr=cfg.learning_rate)
            update = engine.function(self._sgd_step, name="minigo_train_step", num_feeds=3)
            if examples:
                for _ in range(cfg.sgd_steps):
                    batch_indices = rng.integers(0, len(examples), size=min(cfg.sgd_batch_size, len(examples)))
                    features = np.stack([examples[i].features for i in batch_indices])
                    policies = np.stack([examples[i].policy_target for i in batch_indices])
                    values = np.array([examples[i].value_target for i in batch_indices], dtype=np.float32)
                    if profiler is not None:
                        with profiler.operation("backpropagation"):
                            losses.append(update(network, optimizer, features, policies, values))
                    else:
                        losses.append(update(network, optimizer, features, policies, values))
            candidate_weights = network.state_dict()

        trace = profiler.finalize() if profiler is not None else None
        if store is not None:
            trace = None
        return candidate_weights, losses, trace, system.clock.now_us

    @staticmethod
    def _sgd_step(network: PolicyValueNet, optimizer: Adam, features: np.ndarray,
                  policies: np.ndarray, values: np.ndarray) -> float:
        with Tape() as tape:
            logits, value = network(Tensor(features))
            log_probs = F.log_softmax(logits)
            policy_loss = F.neg(F.reduce_mean(F.reduce_sum(F.mul(Tensor(policies), log_probs), axis=-1)))
            value_loss = F.mse_loss(value, Tensor(values.reshape(-1, 1)))
            loss = F.add(policy_loss, value_loss)
        grads = tape.gradient(loss, network.parameters())
        optimizer.step(grads)
        return loss.item()

    # ----------------------------------------------------------------- phase 3
    def _evaluate_candidate(self, candidate_weights: List[np.ndarray], device: GPUDevice, store=None):
        cfg = self.config
        system = System.create(seed=cfg.seed + 6, config=self.cost_config,
                               device=device, worker="evaluate_candidate_model")
        system.cuda.default_stream = cfg.num_workers + 2
        engine = GraphEngine(system, flavor="tensorflow")
        profiler: Optional[Profiler] = None
        if cfg.profile:
            profiler = Profiler(system, ProfilerConfig.full(), worker="evaluate_candidate_model",
                                store=store)
            profiler.attach(engine=engine)
            profiler.set_phase("evaluation")

        rng = np.random.default_rng(cfg.seed + 13)
        wins = 0
        with use_engine(engine):
            current = PolicyValueNet(cfg.board_size, cfg.hidden, rng=np.random.default_rng(cfg.seed + 7))
            current.load_state_dict(self.current_weights)
            candidate = PolicyValueNet(cfg.board_size, cfg.hidden, rng=np.random.default_rng(cfg.seed + 7))
            candidate.load_state_dict(candidate_weights)

            # With batched inference on, both evaluation workers share one
            # InferenceService queue: each side's MCTS waves (leaf_batch
            # leaves per wave) go through one batched engine call instead of
            # per-leaf evaluations on private compiled evaluators.  Rows of
            # the two models never share a matmul — the candidate client
            # carries its own network — but both ride the same service,
            # replica bookkeeping and stats.
            eval_service: Optional[InferenceService] = None
            current_client = candidate_client = None
            if cfg.batched_inference:
                eval_service = InferenceService(current, max_batch=cfg.inference_max_batch,
                                                name="evaluation_inference",
                                                num_replicas=cfg.num_replicas,
                                                routing=cfg.routing,
                                                primary_device=device,
                                                cost_config=self.cost_config,
                                                seed=cfg.seed)
                current_client = eval_service.connect(system, engine, worker="evaluation_current",
                                                      profiler=profiler)
                candidate_client = eval_service.connect(system, engine, worker="evaluation_candidate",
                                                        network=candidate, profiler=profiler)

            eval_leaf_batch = cfg.leaf_batch if cfg.batched_inference else 1
            current_worker = SelfPlayWorker(system, engine, current, profiler=profiler,
                                            board_size=cfg.board_size,
                                            num_simulations=max(cfg.num_simulations // 2, 2),
                                            max_moves=cfg.max_moves, seed=cfg.seed + 21,
                                            leaf_batch=eval_leaf_batch,
                                            inference=eval_service, inference_client=current_client)
            candidate_worker = SelfPlayWorker(system, engine, candidate, profiler=profiler,
                                              board_size=cfg.board_size,
                                              num_simulations=max(cfg.num_simulations // 2, 2),
                                              max_moves=cfg.max_moves, seed=cfg.seed + 22,
                                              leaf_batch=eval_leaf_batch,
                                              inference=eval_service, inference_client=candidate_client)

            for game in range(cfg.evaluation_games):
                candidate_is_black = game % 2 == 0
                winner_is_black = self._play_match(candidate_worker if candidate_is_black else current_worker,
                                                   current_worker if candidate_is_black else candidate_worker,
                                                   rng)
                if winner_is_black == candidate_is_black:
                    wins += 1

        trace = profiler.finalize() if profiler is not None else None
        if store is not None:
            trace = None
        eval_stats = eval_service.stats if eval_service is not None else None
        return wins, trace, system.clock.now_us, eval_stats

    def _play_match(self, black_worker: SelfPlayWorker, white_worker: SelfPlayWorker,
                    rng: np.random.Generator) -> bool:
        """Play one evaluation game; returns True if Black wins."""
        cfg = self.config
        position = GoPosition.initial(cfg.board_size)
        max_moves = cfg.max_moves if cfg.max_moves is not None else 2 * cfg.board_size * cfg.board_size
        move_number = 0
        while not position.is_over and move_number < max_moves:
            worker = black_worker if position.to_play == 1 else white_worker
            mcts = MCTS(worker._profiled_evaluator, num_simulations=worker.num_simulations,
                        leaf_batch=worker.leaf_batch, rng=rng)
            root = mcts.search(position, add_noise=False)
            move = mcts.choose_move(root, temperature=1e-6)
            position = position.play(move)
            move_number += 1
        if position.is_over:
            return position.result() > 0
        return position.board.area_score() > 0
