"""The full Minigo training round: self-play, SGD updates, evaluation.

One *generation* of Minigo training (Appendix B.2.2 of the paper) consists of
three phases:

1. **Self-play** — the current model plays games against itself across a pool
   of parallel worker processes, producing (position, visit-distribution,
   outcome) training examples.
2. **SGD updates** — a trainer process updates the policy/value network on
   the collected examples, producing a candidate model.
3. **Evaluation** — the candidate plays the current model; the winner becomes
   the model of the next generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..backend import functional as F
from ..backend.autodiff import Tape
from ..backend.context import use_engine
from ..backend.graph import GraphEngine
from ..backend.optimizers import Adam
from ..backend.tensor import Tensor
from ..hw.costmodel import CostModelConfig
from ..hw.gpu import GPUDevice
from ..hw.nvidia_smi import UtilizationReport, sample_utilization
from ..profiler.api import Profiler, ProfilerConfig
from ..profiler.events import EventTrace
from ..rollout.driver import StepwiseDriver
from ..rollout.scheduler import PoolScheduler
from ..sim.go import GoPosition
from ..system import System
from .inference import InferenceService, InferenceStats, InferenceTicket
from .mcts import MCTS, LeafEvalRequest, SearchCursor
from .selfplay import (
    _NULL_OPERATION,
    OP_TREE_SEARCH,
    TREE_SEARCH_UNITS_PER_SIM,
    PolicyValueNet,
    SelfPlayExample,
    SelfPlayWorker,
)
from .workers import SCHEDULER_SEQUENTIAL, SchedulerStats, SelfPlayPool, WorkerRun


@dataclass
class MinigoRoundResult:
    """Everything produced by one Minigo training round."""

    worker_runs: List[WorkerRun]
    trainer_trace: Optional[EventTrace]
    trainer_time_us: float
    evaluation_trace: Optional[EventTrace]
    evaluation_time_us: float
    candidate_wins: int
    evaluation_games: int
    candidate_accepted: bool
    losses: List[float] = field(default_factory=list)
    device: Optional[GPUDevice] = None
    #: Set when the round streamed every phase's trace into a TraceDB store.
    trace_dir: Optional[str] = None
    #: Batching behaviour of the self-play phase's shared service (None when
    #: batched inference is off).
    selfplay_inference_stats: Optional[InferenceStats] = None
    #: Batching behaviour of the candidate-evaluation phase's shared service.
    evaluation_inference_stats: Optional[InferenceStats] = None
    #: Event-loop counters of the self-play phase (event scheduler only).
    scheduler_stats: Optional[SchedulerStats] = None
    #: Per-replica batching stats of the self-play service (index-aligned;
    #: None when batched inference is off).
    selfplay_replica_stats: Optional[List[InferenceStats]] = None
    #: Virtual time to broadcast the round's outgoing weights to every
    #: inference replica (0.0 without batched inference).  Reported for
    #: between-round accounting; collection-phase clocks restart at zero
    #: each round, so the broadcast does not delay later rounds' timelines.
    weight_broadcast_us: float = 0.0

    def traces(self) -> Dict[str, EventTrace]:
        traces = {run.worker: run.trace for run in self.worker_runs if run.trace is not None}
        if self.trainer_trace is not None:
            traces["trainer"] = self.trainer_trace
        if self.evaluation_trace is not None:
            traces["evaluate_candidate_model"] = self.evaluation_trace
        return traces

    def utilization(self, *, sample_period_us: float = 250_000.0) -> UtilizationReport:
        """nvidia-smi style utilization over the parallel data-collection window."""
        if self.device is None:
            raise ValueError("no device recorded for this round")
        window_end = max((run.total_time_us for run in self.worker_runs), default=0.0)
        return sample_utilization(self.device, window_end_us=window_end,
                                  sample_period_us=sample_period_us)


@dataclass
class MinigoConfig:
    """Scale parameters of one training round (defaults are reproduction-sized)."""

    num_workers: int = 16
    board_size: int = 5
    num_simulations: int = 8
    games_per_worker: int = 1
    max_moves: Optional[int] = None
    hidden: Tuple[int, int] = (128, 128)
    sgd_steps: int = 32
    sgd_batch_size: int = 32
    learning_rate: float = 1e-2
    evaluation_games: int = 2
    acceptance_threshold: float = 0.55
    profile: bool = True
    seed: int = 0
    #: Route self-play leaf evaluation through one shared batched
    #: InferenceService instead of per-worker engines calling per leaf.
    batched_inference: bool = False
    #: In-flight leaves each MCTS wave collects per batched evaluation
    #: (1 reproduces the legacy per-leaf search decision-for-decision).
    leaf_batch: int = 1
    #: Largest row count the inference service packs into one engine call.
    inference_max_batch: int = 64
    #: Number of model replicas the inference service shards across (each
    #: replica beyond the first models an additional inference GPU).
    num_replicas: int = 1
    #: How batches are routed to replicas: "round-robin", "least-loaded" or
    #: "sticky" (cache-affinity: each batch host pins to one replica).
    routing: str = "round-robin"
    #: Self-play execution model: "sequential" runs each worker to
    #: completion on its own timeline; "event" interleaves all workers at
    #: wave granularity so the shared service batches across workers
    #: (requires batched_inference).
    scheduler: str = SCHEDULER_SEQUENTIAL
    #: How the event-driven scheduler departs batches: "max-batch" (wait
    #: until full or everyone blocks), "timeout" (partial batches depart
    #: flush_timeout_us after their first request), or "unbatched" (one
    #: ticket per call — the determinism baseline).
    flush_policy: str = "max-batch"
    flush_timeout_us: Optional[float] = None
    #: Per-search MCTS transposition table: DAG-share identical positions
    #: reached by different move orders inside one search.
    transposition: bool = False
    #: Row capacity of the service-side evaluation cache (None = off, the
    #: bit-for-bit baseline).  Requires batched_inference: workers then
    #: attach Zobrist state keys to every wave so the shared service can
    #: dedupe and reuse rows across workers — and, in the evaluation
    #: phase, across concurrent games.
    cache_capacity: Optional[int] = None
    #: "shared" (one service-wide cache) or "replica" (one per replica,
    #: pairs with sticky routing).
    cache_scope: str = "shared"
    #: When set, every phase streams its trace into one TraceDB store
    #: (per-worker shards) instead of keeping whole traces in memory.  Each
    #: round gets its own ``round_NNN`` store under this directory — worker
    #: clocks restart at zero every round, so rounds must not share shards.
    trace_dir: Optional[str] = None


class MinigoTraining:
    """Drives one (or more) Minigo training rounds."""

    def __init__(self, config: Optional[MinigoConfig] = None,
                 cost_config: Optional[CostModelConfig] = None) -> None:
        self.config = config if config is not None else MinigoConfig()
        self.cost_config = cost_config
        rng = np.random.default_rng(self.config.seed + 7)
        self.current_weights = PolicyValueNet(self.config.board_size, self.config.hidden,
                                              rng=rng).state_dict()
        self._round_counter = 0

    # ------------------------------------------------------------------ round
    def run_round(self) -> MinigoRoundResult:
        cfg = self.config
        # One shared streaming store for every phase's shards (when enabled),
        # in a fresh per-round directory so earlier rounds stay readable.
        store = None
        round_dir: Optional[str] = None
        if cfg.trace_dir is not None and cfg.profile:
            import os
            from ..tracedb.writer import StreamingTraceWriter
            round_dir = os.path.join(cfg.trace_dir, f"round_{self._round_counter:03d}")
            self._round_counter += 1
            store = StreamingTraceWriter(round_dir)
        # Phase 1: parallel self-play data collection.
        pool = SelfPlayPool(
            cfg.num_workers,
            board_size=cfg.board_size,
            num_simulations=cfg.num_simulations,
            games_per_worker=cfg.games_per_worker,
            max_moves=cfg.max_moves,
            hidden=cfg.hidden,
            profile=cfg.profile,
            cost_config=self.cost_config,
            seed=cfg.seed,
            store=store,
            batched_inference=cfg.batched_inference,
            leaf_batch=cfg.leaf_batch,
            inference_max_batch=cfg.inference_max_batch,
            num_replicas=cfg.num_replicas,
            routing=cfg.routing,
            scheduler=cfg.scheduler,
            flush_policy=cfg.flush_policy,
            flush_timeout_us=cfg.flush_timeout_us,
            transposition=cfg.transposition,
            cache_capacity=cfg.cache_capacity,
            cache_scope=cfg.cache_scope,
        )
        runs = pool.run(self.current_weights)
        examples = pool.all_examples()

        # Phase 2: SGD updates on a trainer process (shares the same GPU).
        candidate_weights, losses, trainer_trace, trainer_time = self._train_candidate(
            examples, pool.device, store)

        # Phase 3: evaluation games between current and candidate models.
        wins, eval_trace, eval_time, eval_stats = self._evaluate_candidate(
            candidate_weights, pool.device, store)
        if store is not None:
            store.close()
        accepted = wins / max(cfg.evaluation_games, 1) >= cfg.acceptance_threshold
        if accepted:
            self.current_weights = candidate_weights

        # Propagate the round's outgoing weights to every inference replica
        # and record the virtual broadcast span.  The cost is *reported*
        # (weight_broadcast_us), not enforced on later rounds: each round
        # builds a fresh pool whose clocks restart at zero, with the weights
        # pre-placed before collection starts (update_weights(charge=False)).
        broadcast_us = 0.0
        if pool.inference_service is not None:
            broadcast_us = pool.inference_service.update_weights(self.current_weights)

        return MinigoRoundResult(
            worker_runs=runs,
            trainer_trace=trainer_trace,
            trainer_time_us=trainer_time,
            evaluation_trace=eval_trace,
            evaluation_time_us=eval_time,
            candidate_wins=wins,
            evaluation_games=cfg.evaluation_games,
            candidate_accepted=accepted,
            losses=losses,
            device=pool.device,
            trace_dir=round_dir,
            selfplay_inference_stats=(pool.inference_service.stats
                                      if pool.inference_service is not None else None),
            evaluation_inference_stats=eval_stats,
            scheduler_stats=(pool.pool_scheduler.stats
                             if pool.pool_scheduler is not None else None),
            selfplay_replica_stats=(
                [replica.stats for replica in pool.inference_service.replicas]
                if pool.inference_service is not None else None),
            weight_broadcast_us=broadcast_us,
        )

    # ----------------------------------------------------------------- phase 2
    def _train_candidate(self, examples: List[SelfPlayExample], device: GPUDevice, store=None):
        cfg = self.config
        system = System.create(seed=cfg.seed + 5, config=self.cost_config,
                               device=device, worker="trainer")
        system.cuda.default_stream = cfg.num_workers + 1
        engine = GraphEngine(system, flavor="tensorflow")
        profiler: Optional[Profiler] = None
        if cfg.profile:
            profiler = Profiler(system, ProfilerConfig.full(), worker="trainer", store=store)
            profiler.attach(engine=engine)
            profiler.set_phase("sgd_updates")

        rng = np.random.default_rng(cfg.seed + 11)
        losses: List[float] = []
        with use_engine(engine):
            network = PolicyValueNet(cfg.board_size, cfg.hidden, rng=np.random.default_rng(cfg.seed + 7))
            network.load_state_dict(self.current_weights)
            optimizer = Adam(network.parameters(), lr=cfg.learning_rate)
            update = engine.function(self._sgd_step, name="minigo_train_step", num_feeds=3)
            if examples:
                for _ in range(cfg.sgd_steps):
                    batch_indices = rng.integers(0, len(examples), size=min(cfg.sgd_batch_size, len(examples)))
                    features = np.stack([examples[i].features for i in batch_indices])
                    policies = np.stack([examples[i].policy_target for i in batch_indices])
                    values = np.array([examples[i].value_target for i in batch_indices], dtype=np.float32)
                    if profiler is not None:
                        with profiler.operation("backpropagation"):
                            losses.append(update(network, optimizer, features, policies, values))
                    else:
                        losses.append(update(network, optimizer, features, policies, values))
            candidate_weights = network.state_dict()

        trace = profiler.finalize() if profiler is not None else None
        if store is not None:
            trace = None
        return candidate_weights, losses, trace, system.clock.now_us

    @staticmethod
    def _sgd_step(network: PolicyValueNet, optimizer: Adam, features: np.ndarray,
                  policies: np.ndarray, values: np.ndarray) -> float:
        with Tape() as tape:
            logits, value = network(Tensor(features))
            log_probs = F.log_softmax(logits)
            policy_loss = F.neg(F.reduce_mean(F.reduce_sum(F.mul(Tensor(policies), log_probs), axis=-1)))
            value_loss = F.mse_loss(value, Tensor(values.reshape(-1, 1)))
            loss = F.add(policy_loss, value_loss)
        grads = tape.gradient(loss, network.parameters())
        optimizer.step(grads)
        return loss.item()

    # ----------------------------------------------------------------- phase 3
    def _evaluate_candidate(self, candidate_weights: List[np.ndarray], device: GPUDevice, store=None):
        cfg = self.config
        system = System.create(seed=cfg.seed + 6, config=self.cost_config,
                               device=device, worker="evaluate_candidate_model")
        system.cuda.default_stream = cfg.num_workers + 2
        engine = GraphEngine(system, flavor="tensorflow")
        profiler: Optional[Profiler] = None
        if cfg.profile:
            profiler = Profiler(system, ProfilerConfig.full(), worker="evaluate_candidate_model",
                                store=store)
            profiler.attach(engine=engine)
            profiler.set_phase("evaluation")

        with use_engine(engine):
            current = PolicyValueNet(cfg.board_size, cfg.hidden, rng=np.random.default_rng(cfg.seed + 7))
            current.load_state_dict(self.current_weights)
            candidate = PolicyValueNet(cfg.board_size, cfg.hidden, rng=np.random.default_rng(cfg.seed + 7))
            candidate.load_state_dict(candidate_weights)

            # With batched inference on, both evaluation workers share one
            # InferenceService queue: each side's MCTS waves (leaf_batch
            # leaves per wave) go through one batched engine call instead of
            # per-leaf evaluations on private compiled evaluators.  Rows of
            # the two models never share a matmul — the candidate client
            # carries its own network — but both ride the same service,
            # replica bookkeeping and stats.
            eval_service: Optional[InferenceService] = None
            current_client = candidate_client = None
            if cfg.batched_inference:
                eval_service = InferenceService(current, max_batch=cfg.inference_max_batch,
                                                name="evaluation_inference",
                                                num_replicas=cfg.num_replicas,
                                                routing=cfg.routing,
                                                primary_device=device,
                                                cost_config=self.cost_config,
                                                seed=cfg.seed,
                                                cache_capacity=cfg.cache_capacity,
                                                cache_scope=cfg.cache_scope)
                current_client = eval_service.connect(system, engine, worker="evaluation_current",
                                                      profiler=profiler)
                candidate_client = eval_service.connect(system, engine, worker="evaluation_candidate",
                                                        network=candidate, profiler=profiler)

            eval_leaf_batch = cfg.leaf_batch if cfg.batched_inference else 1
            emit_keys = cfg.batched_inference and cfg.cache_capacity is not None
            current_worker = SelfPlayWorker(system, engine, current, profiler=profiler,
                                            board_size=cfg.board_size,
                                            num_simulations=max(cfg.num_simulations // 2, 2),
                                            max_moves=cfg.max_moves, seed=cfg.seed + 21,
                                            leaf_batch=eval_leaf_batch,
                                            inference=eval_service, inference_client=current_client,
                                            transposition=cfg.transposition,
                                            emit_state_keys=emit_keys)
            candidate_worker = SelfPlayWorker(system, engine, candidate, profiler=profiler,
                                              board_size=cfg.board_size,
                                              num_simulations=max(cfg.num_simulations // 2, 2),
                                              max_moves=cfg.max_moves, seed=cfg.seed + 22,
                                              leaf_batch=eval_leaf_batch,
                                              inference=eval_service, inference_client=candidate_client,
                                              transposition=cfg.transposition,
                                              emit_state_keys=emit_keys)

            # All evaluation games run *concurrently*: one stepwise driver
            # per game, interleaved by the pool scheduler, so the two sides'
            # waves coalesce across games into shared engine calls — and,
            # with the evaluation cache armed, game N's positions hit on
            # game N-2's rows (games alternate colors with period 2, and
            # noise-free argmax play makes repeats exact).  Outcomes cannot
            # depend on the interleaving: with add_noise=False and
            # temperature ~ 0 each move is an argmax over visit counts, so
            # the per-game RNG draw is outcome-invariant.
            max_moves = (cfg.max_moves if cfg.max_moves is not None
                         else 2 * cfg.board_size * cfg.board_size)
            drivers = [
                EvalMatchDriver(
                    candidate_worker if game % 2 == 0 else current_worker,
                    current_worker if game % 2 == 0 else candidate_worker,
                    candidate_is_black=game % 2 == 0,
                    max_moves=max_moves,
                    rng=np.random.default_rng(cfg.seed + 13),
                    name=f"evaluation_game_{game}")
                for game in range(cfg.evaluation_games)
            ]
            if eval_service is not None and drivers:
                PoolScheduler(drivers, eval_service,
                              flush_policy=cfg.flush_policy,
                              flush_timeout_us=cfg.flush_timeout_us).run()
            else:
                # No shared service to block on: drivers never suspend, so
                # stepping each to completion is the full schedule.
                for driver in drivers:
                    while driver.step():
                        pass
            wins = sum(1 for driver in drivers if driver.candidate_won)

        trace = profiler.finalize() if profiler is not None else None
        if store is not None:
            trace = None
        eval_stats = eval_service.stats if eval_service is not None else None
        return wins, trace, system.clock.now_us, eval_stats


class EvalMatchDriver(StepwiseDriver):
    """One candidate-evaluation game as a resumable state machine.

    The stepwise analogue of the old synchronous ``_play_match`` loop: one
    :meth:`step` starts a move (charging the tree-traversal work and
    submitting the first evaluation wave) or resumes after a served wave,
    with the side to move picked from ``position.to_play`` each move.  Under
    a :class:`~repro.rollout.scheduler.PoolScheduler` every game of the
    evaluation round advances on the shared ``evaluate_candidate_model``
    timeline, so same-model waves from different games batch into one engine
    call and the service's evaluation cache hits across games.

    Unlike :class:`~repro.minigo.selfplay.GameDriver`, profiler annotations
    never stay open across a suspension: concurrent games share one
    profiler, whose operation stack requires strict nesting — tree-search
    work is annotated synchronously and the batch wait is charged by the
    service outside any operation.
    """

    def __init__(self, black_worker: SelfPlayWorker, white_worker: SelfPlayWorker, *,
                 candidate_is_black: bool, max_moves: int,
                 rng: np.random.Generator, name: str) -> None:
        self.black_worker = black_worker
        self.white_worker = white_worker
        self.candidate_is_black = candidate_is_black
        self.max_moves = max_moves
        self.rng = rng
        self._name = name
        self._position = GoPosition.initial(black_worker.board_size)
        self._move_number = 0
        self._finished = False
        self._winner_is_black: Optional[bool] = None
        # Per-move state (held across suspensions).
        self._worker: Optional[SelfPlayWorker] = None
        self._mcts: Optional[MCTS] = None
        self._search: Optional[SearchCursor] = None
        self._request: Optional[LeafEvalRequest] = None
        self._ticket: Optional[InferenceTicket] = None

    # ------------------------------------------------------------- scheduling
    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def blocked(self) -> bool:
        return self._ticket is not None and not self._ticket.done

    @property
    def now_us(self) -> float:
        return self.black_worker.system.clock.now_us

    @property
    def worker_name(self) -> str:
        return self._name

    @property
    def candidate_won(self) -> bool:
        if self._winner_is_black is None:
            raise RuntimeError(f"evaluation game {self._name!r} has not finished")
        return self._winner_is_black == self.candidate_is_black

    def step(self) -> bool:
        if self._finished:
            return False
        if self.blocked:
            raise RuntimeError(f"stepped evaluation driver {self._name!r} "
                               "while it is blocked on inference")
        with use_engine(self.black_worker.engine):
            if self._ticket is not None:
                self._resume_wave()
            else:
                self._begin_move()
        return not self._finished

    # ------------------------------------------------------------ transitions
    def _begin_move(self) -> None:
        if self._position.is_over or self._move_number >= self.max_moves:
            self._finish_game()
            return
        worker = self.black_worker if self._position.to_play == 1 else self.white_worker
        self._worker = worker
        profiler = worker.profiler
        op = (profiler.operation(OP_TREE_SEARCH) if profiler is not None
              else _NULL_OPERATION)
        with op:
            worker.system.cpu_work(TREE_SEARCH_UNITS_PER_SIM * worker.num_simulations)
        self._mcts = MCTS(worker._profiled_evaluator,
                          num_simulations=worker.num_simulations,
                          leaf_batch=worker.leaf_batch, rng=self.rng,
                          transposition=worker.transposition,
                          emit_state_keys=worker.emit_state_keys)
        self._search = SearchCursor(self._mcts, self._position, add_noise=False)
        self._advance_search()

    def _advance_search(self) -> None:
        worker = self._worker
        search = self._search
        while True:
            request = search.request
            if request is None:
                self._commit_move(search.root)
                return
            if worker._client is None:
                # Private compiled evaluator: resolve the wave in place.
                priors, values = worker._profiled_evaluator(request.features)
                request.fulfill(priors, values)
                search.advance()
                continue
            # Shared service: queue the wave and suspend until served.
            self._request = request
            metadata = {"rows": request.num_rows, "leaf_batch": worker.leaf_batch}
            if request.state_keys is not None:
                metadata["state_keys"] = request.state_keys
            self._ticket = worker._client.submit(request.features, metadata=metadata)
            return

    def _resume_wave(self) -> None:
        ticket, self._ticket = self._ticket, None
        request, self._request = self._request, None
        priors, values = ticket.result()
        request.fulfill(priors, values)
        self._search.advance()
        self._advance_search()

    def _commit_move(self, root) -> None:
        move = self._mcts.choose_move(root, temperature=1e-6)
        self._position = self._position.play(move)
        self._move_number += 1
        self._worker = None
        self._mcts = None
        self._search = None
        if self._position.is_over or self._move_number >= self.max_moves:
            self._finish_game()

    def _finish_game(self) -> None:
        position = self._position
        if position.is_over:
            self._winner_is_black = position.result() > 0
        else:
            self._winner_is_black = position.board.area_score() > 0
        self._finished = True
