"""Minigo self-play: policy/value network and self-play game generation.

One self-play worker repeatedly runs MCTS from the current position
(``mcts_tree_search``, Python time), evaluating leaf positions with the
policy/value network (``expand_leaf``, ML-backend + GPU time), exactly the
annotation structure of Figure 2 in the paper.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..backend import functional as F
from ..backend.context import use_engine
from ..backend.engine import BackendEngine
from ..backend.layers import MLP, Module
from ..backend.tensor import Parameter, Tensor
from ..profiler.api import Profiler
from ..sim.go import GoPosition
from ..system import System
from .inference import InferenceClient, InferenceService
from .mcts import MCTS

OP_TREE_SEARCH = "mcts_tree_search"
OP_EXPAND_LEAF = "expand_leaf"

#: Python units charged per MCTS node traversal (tree-walking work in Python).
TREE_SEARCH_UNITS_PER_SIM = 1500.0


class PolicyValueNet(Module):
    """Small AlphaGoZero-style network: shared trunk, policy head, value head."""

    def __init__(self, board_size: int, hidden: Tuple[int, ...] = (128, 128), *,
                 rng: Optional[np.random.Generator] = None, name: str = "pv_net") -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        feature_dim = 3 * board_size * board_size
        num_moves = board_size * board_size + 1
        self.board_size = board_size
        self.num_moves = num_moves
        self.trunk = MLP(feature_dim, list(hidden[:-1]), hidden[-1], activation="relu",
                         out_activation="relu", name=f"{name}/trunk", rng=rng)
        self.policy_head = MLP(hidden[-1], [], num_moves, name=f"{name}/policy", rng=rng)
        self.value_head = MLP(hidden[-1], [], 1, out_activation="tanh", name=f"{name}/value", rng=rng)

    def __call__(self, features: Tensor) -> Tuple[Tensor, Tensor]:
        trunk = self.trunk(features)
        policy_logits = self.policy_head(trunk)
        value = self.value_head(trunk)
        return policy_logits, value

    def parameters(self) -> List[Parameter]:
        return self.trunk.parameters() + self.policy_head.parameters() + self.value_head.parameters()


@dataclass
class SelfPlayExample:
    """One training example: position features, MCTS visit distribution, game outcome."""

    features: np.ndarray
    policy_target: np.ndarray
    value_target: float


@dataclass
class SelfPlayResult:
    """Result of one worker's self-play session."""

    worker: str
    games: int
    moves: int
    examples: List[SelfPlayExample] = field(default_factory=list)
    black_wins: int = 0


class SelfPlayWorker:
    """One self-play process: its own system/engine, sharing the GPU device."""

    def __init__(
        self,
        system: System,
        engine: BackendEngine,
        network: Optional[PolicyValueNet],
        *,
        profiler: Optional[Profiler] = None,
        board_size: int = 9,
        num_simulations: int = 16,
        max_moves: Optional[int] = None,
        temperature_moves: int = 8,
        seed: int = 0,
        leaf_batch: int = 1,
        inference: Optional[InferenceService] = None,
    ) -> None:
        """With ``inference`` set, leaf evaluation goes through the shared
        batched :class:`~repro.minigo.inference.InferenceService` (one model
        replica for every worker) instead of a private compiled evaluator;
        ``leaf_batch`` controls how many in-flight leaves each MCTS wave
        collects per batched call (1 reproduces the legacy per-leaf search
        decision-for-decision)."""
        if leaf_batch <= 0:
            raise ValueError("leaf_batch must be positive")
        self.system = system
        self.engine = engine
        self.profiler = profiler
        self.board_size = board_size
        self.num_simulations = num_simulations
        self.max_moves = max_moves if max_moves is not None else 2 * board_size * board_size
        self.temperature_moves = temperature_moves
        self.leaf_batch = leaf_batch
        self.rng = np.random.default_rng(seed)
        self.inference = inference
        self._client: Optional[InferenceClient] = None
        self._evaluate_compiled = None
        if inference is not None:
            self.network = network if network is not None else inference.network
            self._client = inference.connect(system, engine, worker=system.worker)
        else:
            if network is None:
                raise ValueError("network is required when no inference service is given")
            self.network = network
            self._evaluate_compiled = engine.function(self._evaluate, name="expand_leaf", num_feeds=1)

    # -------------------------------------------------------------- evaluation
    def _evaluate(self, features: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        logits, value = self.network(Tensor(features))
        priors = F.softmax(logits)
        return priors.numpy(), value.numpy().reshape(-1)

    def _profiled_evaluator(self, features: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Leaf evaluation scoped to the ``expand_leaf`` operation."""
        if self._client is not None:
            if self.profiler is None:
                return self._client.evaluate(features)
            # Batched path: the service fills the metadata dict with the
            # serving batch shape so shared batch time stays attributable to
            # this worker's expand_leaf annotation.
            metadata = {"rows": int(features.shape[0]), "leaf_batch": self.leaf_batch}
            with self.profiler.operation(OP_EXPAND_LEAF, metadata=metadata):
                return self._client.evaluate(features, metadata=metadata)
        if self.profiler is not None:
            with self.profiler.operation(OP_EXPAND_LEAF):
                return self._evaluate_compiled(features)
        return self._evaluate_compiled(features)

    # ----------------------------------------------------------------- play
    def play_games(self, num_games: int) -> SelfPlayResult:
        """Play ``num_games`` games of self-play, collecting training examples."""
        result = SelfPlayResult(worker=self.system.worker, games=num_games, moves=0)
        if self.profiler is not None:
            self.profiler.set_phase("selfplay")
        with use_engine(self.engine):
            for _ in range(num_games):
                self._play_one_game(result)
        return result

    def _play_one_game(self, result: SelfPlayResult) -> None:
        mcts = MCTS(self._profiled_evaluator, num_simulations=self.num_simulations,
                    leaf_batch=self.leaf_batch, rng=self.rng)
        position = GoPosition.initial(self.board_size)
        game_examples: List[Tuple[np.ndarray, np.ndarray, int]] = []
        move_number = 0
        while not position.is_over and move_number < self.max_moves:
            if self.profiler is not None:
                op_cm = self.profiler.operation(OP_TREE_SEARCH)
            else:
                op_cm = nullcontext()
            with op_cm:
                # Python-side tree traversal work.
                self.system.cpu_work(TREE_SEARCH_UNITS_PER_SIM * self.num_simulations)
                root = mcts.search(position, add_noise=True)
                temperature = 1.0 if move_number < self.temperature_moves else 1e-6
                # policy_from_visits returns a normalised distribution (it
                # guards the all-zero and underflow cases itself).
                policy = mcts.policy_from_visits(root, temperature=temperature)
                move_index = int(self.rng.choice(len(policy), p=policy))
                move = position.index_to_move(move_index)
            game_examples.append((position.features(), policy.astype(np.float32), position.to_play))
            position = position.play(move)
            move_number += 1
            result.moves += 1

        outcome = position.result() if position.is_over else float(np.sign(position.board.area_score()) or 1.0)
        if outcome > 0:
            result.black_wins += 1
        for features, policy, to_play in game_examples:
            value_target = outcome if to_play == 1 else -outcome
            result.examples.append(SelfPlayExample(features=features, policy_target=policy,
                                                   value_target=float(value_target)))
