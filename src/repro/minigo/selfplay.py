"""Minigo self-play: policy/value network and self-play game generation.

One self-play worker repeatedly runs MCTS from the current position
(``mcts_tree_search``, Python time), evaluating leaf positions with the
policy/value network (``expand_leaf``, ML-backend + GPU time), exactly the
annotation structure of Figure 2 in the paper.

Game play is a resumable state machine: :class:`GameDriver` advances one
worker's games step by step (one step = one MCTS wave or one move commit)
and *suspends* at inference boundaries instead of evaluating in place.  The
synchronous :meth:`SelfPlayWorker.play_games` drives it to completion
immediately — reproducing the legacy inline game loop bit-for-bit — while
the event-driven :class:`~repro.minigo.workers.PoolScheduler` interleaves
many workers' drivers on a shared virtual timeline so one batched engine
call can serve leaves from all of them.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..backend import functional as F
from ..backend.context import use_engine
from ..backend.engine import BackendEngine
from ..backend.layers import MLP, Module
from ..backend.tensor import Parameter, Tensor
from ..profiler.api import Profiler
from ..rollout.driver import StepwiseDriver
from ..sim.go import GoPosition
from ..system import System
from .inference import InferenceClient, InferenceService, InferenceTicket
from .mcts import MCTS, LeafEvalRequest, SearchCursor

OP_TREE_SEARCH = "mcts_tree_search"
OP_EXPAND_LEAF = "expand_leaf"

#: Python units charged per MCTS node traversal (tree-walking work in Python).
TREE_SEARCH_UNITS_PER_SIM = 1500.0

#: Shared no-op context for unprofiled runs: ``nullcontext`` is stateless and
#: re-entrant, so one module-level instance replaces a per-move allocation.
_NULL_OPERATION = nullcontext()


class PolicyValueNet(Module):
    """Small AlphaGoZero-style network: shared trunk, policy head, value head."""

    def __init__(self, board_size: int, hidden: Tuple[int, ...] = (128, 128), *,
                 rng: Optional[np.random.Generator] = None, name: str = "pv_net") -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        feature_dim = 3 * board_size * board_size
        num_moves = board_size * board_size + 1
        self.board_size = board_size
        self.num_moves = num_moves
        self.trunk = MLP(feature_dim, list(hidden[:-1]), hidden[-1], activation="relu",
                         out_activation="relu", name=f"{name}/trunk", rng=rng)
        self.policy_head = MLP(hidden[-1], [], num_moves, name=f"{name}/policy", rng=rng)
        self.value_head = MLP(hidden[-1], [], 1, out_activation="tanh", name=f"{name}/value", rng=rng)

    def __call__(self, features: Tensor) -> Tuple[Tensor, Tensor]:
        trunk = self.trunk(features)
        policy_logits = self.policy_head(trunk)
        value = self.value_head(trunk)
        return policy_logits, value

    def parameters(self) -> List[Parameter]:
        return self.trunk.parameters() + self.policy_head.parameters() + self.value_head.parameters()


@dataclass
class SelfPlayExample:
    """One training example: position features, MCTS visit distribution, game outcome."""

    features: np.ndarray
    policy_target: np.ndarray
    value_target: float


@dataclass
class SelfPlayResult:
    """Result of one worker's self-play session."""

    worker: str
    games: int
    moves: int
    examples: List[SelfPlayExample] = field(default_factory=list)
    black_wins: int = 0


class SelfPlayWorker:
    """One self-play process: its own system/engine, sharing the GPU device."""

    def __init__(
        self,
        system: System,
        engine: BackendEngine,
        network: Optional[PolicyValueNet],
        *,
        profiler: Optional[Profiler] = None,
        board_size: int = 9,
        num_simulations: int = 16,
        max_moves: Optional[int] = None,
        temperature_moves: int = 8,
        seed: int = 0,
        leaf_batch: int = 1,
        inference: Optional[InferenceService] = None,
        inference_client: Optional[InferenceClient] = None,
        transposition: bool = False,
        emit_state_keys: bool = False,
    ) -> None:
        """With ``inference`` set, leaf evaluation goes through the shared
        batched :class:`~repro.minigo.inference.InferenceService` (one model
        replica for every worker) instead of a private compiled evaluator;
        ``leaf_batch`` controls how many in-flight leaves each MCTS wave
        collects per batched call (1 reproduces the legacy per-leaf search
        decision-for-decision).  ``inference_client`` supplies a pre-built
        client handle (candidate evaluation connects each side with its own
        network); by default the worker connects itself.

        ``transposition`` turns on the per-search MCTS transposition table;
        ``emit_state_keys`` attaches Zobrist position keys to every wave
        submission so a cache-enabled service can dedupe and cache rows
        across workers and games (both default off — the bit-for-bit
        baseline)."""
        if leaf_batch <= 0:
            raise ValueError("leaf_batch must be positive")
        if inference_client is not None and inference is None:
            raise ValueError("inference_client requires the inference service it belongs to")
        self.system = system
        self.engine = engine
        self.profiler = profiler
        self.board_size = board_size
        self.num_simulations = num_simulations
        self.max_moves = max_moves if max_moves is not None else 2 * board_size * board_size
        self.temperature_moves = temperature_moves
        self.leaf_batch = leaf_batch
        self.transposition = transposition
        self.emit_state_keys = emit_state_keys
        self.rng = np.random.default_rng(seed)
        self.inference = inference
        self._client: Optional[InferenceClient] = None
        self._evaluate_compiled = None
        if inference is not None:
            self._client = inference_client if inference_client is not None else \
                inference.connect(system, engine, worker=system.worker, profiler=profiler)
            self.network = network if network is not None else self._client.network
        else:
            if network is None:
                raise ValueError("network is required when no inference service is given")
            self.network = network
            self._evaluate_compiled = engine.function(self._evaluate, name="expand_leaf", num_feeds=1)

    # -------------------------------------------------------------- evaluation
    def _evaluate(self, features: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        logits, value = self.network(Tensor(features))
        priors = F.softmax(logits)
        return priors.numpy(), value.numpy().reshape(-1)

    def _profiled_evaluator(self, features: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Leaf evaluation scoped to the ``expand_leaf`` operation."""
        if self._client is not None:
            if self.profiler is None:
                return self._client.evaluate(features)
            # Batched path: the service fills the metadata dict with the
            # serving batch shape so shared batch time stays attributable to
            # this worker's expand_leaf annotation.
            metadata = {"rows": int(features.shape[0]), "leaf_batch": self.leaf_batch}
            with self.profiler.operation(OP_EXPAND_LEAF, metadata=metadata):
                return self._client.evaluate(features, metadata=metadata)
        if self.profiler is not None:
            with self.profiler.operation(OP_EXPAND_LEAF):
                return self._evaluate_compiled(features)
        return self._evaluate_compiled(features)

    # ----------------------------------------------------------------- play
    def play_games(self, num_games: int) -> SelfPlayResult:
        """Play ``num_games`` games of self-play, collecting training examples.

        Synchronous driver of the stepwise :class:`GameDriver`: whenever the
        driver suspends at an inference boundary, the shared service is
        flushed immediately, so this reproduces the legacy inline game loop
        (annotations, RNG draws and clock charges in identical order).
        """
        driver = GameDriver(self, num_games)
        with use_engine(self.engine):
            while not driver.finished:
                driver.step()
                if driver.blocked:
                    assert self.inference is not None
                    self.inference.flush()
        return driver.result


class GameDriver(StepwiseDriver):
    """Stepwise self-play: one worker's games as a resumable state machine.

    One :meth:`step` performs one schedulable unit of work: starting a move
    (charging the Python-side tree-traversal work and submitting the first
    evaluation wave), resuming after a fulfilled wave (submitting the next
    wave), or committing a move once its search completes.  At an inference
    boundary the driver *suspends*: its ``mcts_tree_search`` and
    ``expand_leaf`` profiler annotations stay open across the wait, so both
    the queueing delay and the batch time the worker is later charged land
    inside the same operation events the synchronous path records.  The
    driver becomes runnable again once its ticket is served.

    Without an inference service the driver evaluates waves in place (the
    legacy per-worker compiled evaluator); with one, :meth:`step` leaves a
    ticket pending and the caller decides when the service runs —
    immediately (:meth:`SelfPlayWorker.play_games`) or only once every
    runnable worker is blocked (:class:`~repro.minigo.workers.PoolScheduler`).
    """

    def __init__(self, worker: SelfPlayWorker, num_games: int) -> None:
        self.worker = worker
        self.num_games = num_games
        self.result = SelfPlayResult(worker=worker.system.worker, games=num_games, moves=0)
        self.steps = 0
        self._games_done = 0
        self._finished = num_games <= 0
        # Per-game state.
        self._mcts: Optional[MCTS] = None
        self._position: Optional[GoPosition] = None
        self._game_examples: List[Tuple[np.ndarray, np.ndarray, int]] = []
        self._move_number = 0
        # Per-move state (held open across suspensions).
        self._search: Optional[SearchCursor] = None
        self._request: Optional[LeafEvalRequest] = None
        self._ticket: Optional[InferenceTicket] = None
        self._search_op = None
        self._leaf_op = None
        if worker.profiler is not None:
            worker.profiler.set_phase("selfplay")

    # ------------------------------------------------------------- scheduling
    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def blocked(self) -> bool:
        """Suspended at an inference boundary, ticket not yet served."""
        return self._ticket is not None and not self._ticket.done

    @property
    def runnable(self) -> bool:
        return not self._finished and not self.blocked

    @property
    def now_us(self) -> float:
        """The worker's virtual clock (the scheduler's priority key)."""
        return self.worker.system.clock.now_us

    @property
    def worker_name(self) -> str:
        return self.worker.system.worker

    def step(self) -> bool:
        """Advance by one unit of work; returns False once all games finished."""
        if self._finished:
            return False
        if self.blocked:
            raise RuntimeError(f"stepped driver of {self.worker.system.worker!r} "
                               "while it is blocked on inference")
        self.steps += 1
        with use_engine(self.worker.engine):
            if self._ticket is not None:
                self._resume_wave()
            else:
                self._begin()
        return not self._finished

    # ------------------------------------------------------------ transitions
    def _begin(self) -> None:
        """Start the next move, rolling game boundaries as needed."""
        if self._position is None:
            self._start_game()
        while self._position.is_over or self._move_number >= self.worker.max_moves:
            self._finish_game()
            if self._finished:
                return
            self._start_game()
        self._begin_move()

    def _start_game(self) -> None:
        worker = self.worker
        self._mcts = MCTS(worker._profiled_evaluator, num_simulations=worker.num_simulations,
                          leaf_batch=worker.leaf_batch, rng=worker.rng,
                          transposition=worker.transposition,
                          emit_state_keys=worker.emit_state_keys)
        self._position = GoPosition.initial(worker.board_size)
        self._game_examples = []
        self._move_number = 0

    def _begin_move(self) -> None:
        worker = self.worker
        if worker.profiler is not None:
            self._search_op = worker.profiler.operation(OP_TREE_SEARCH)
        else:
            self._search_op = _NULL_OPERATION
        self._search_op.__enter__()
        # Python-side tree traversal work.
        worker.system.cpu_work(TREE_SEARCH_UNITS_PER_SIM * worker.num_simulations)
        self._search = SearchCursor(self._mcts, self._position, add_noise=True)
        self._advance_search()

    def _advance_search(self) -> None:
        """Run the search cursor until it suspends or the move completes."""
        worker = self.worker
        search = self._search
        while True:
            request = search.request
            if request is None:
                self._commit_move(search.root)
                return
            if worker._client is None:
                # Private compiled evaluator: resolve the wave in place.
                priors, values = worker._profiled_evaluator(request.features)
                request.fulfill(priors, values)
                search.advance()
                continue
            # Shared service: open the expand_leaf annotation, queue the
            # wave, and suspend until the scheduler serves it.
            self._request = request
            metadata = None
            if worker.profiler is not None:
                metadata = {"rows": request.num_rows, "leaf_batch": worker.leaf_batch}
                self._leaf_op = worker.profiler.operation(OP_EXPAND_LEAF, metadata=metadata)
                self._leaf_op.__enter__()
            if request.state_keys is not None:
                # Cacheable wave: the service reads the per-row keys out of
                # the metadata channel at submit (the profiler annotation,
                # if any, shares the same dict — attribution is unchanged).
                metadata = metadata if metadata is not None else {}
                metadata["state_keys"] = request.state_keys
            self._ticket = worker._client.submit(request.features, metadata=metadata)
            return

    def _resume_wave(self) -> None:
        """Continue after the pending ticket was served."""
        ticket, self._ticket = self._ticket, None
        if self._leaf_op is not None:
            self._leaf_op.__exit__(None, None, None)
            self._leaf_op = None
        request, self._request = self._request, None
        priors, values = ticket.result()
        request.fulfill(priors, values)
        self._search.advance()
        self._advance_search()

    def _commit_move(self, root) -> None:
        worker = self.worker
        temperature = 1.0 if self._move_number < worker.temperature_moves else 1e-6
        # policy_from_visits returns a normalised distribution (it guards
        # the all-zero and underflow cases itself).
        policy = self._mcts.policy_from_visits(root, temperature=temperature)
        move_index = int(worker.rng.choice(len(policy), p=policy))
        move = self._position.index_to_move(move_index)
        self._search_op.__exit__(None, None, None)
        self._search_op = None
        self._search = None
        self._game_examples.append((self._position.features(), policy.astype(np.float32),
                                    self._position.to_play))
        self._position = self._position.play(move)
        self._move_number += 1
        self.result.moves += 1

    # ------------------------------------------------------------ persistence
    def snapshot(self) -> bytes:
        """Pickle the driver's resumable state, suspended search included.

        Valid whenever the driver is *between* steps: runnable, finished, or
        blocked mid-annotation on a pending inference ticket.  The snapshot
        captures everything the worker stack holds for this driver — game and
        search state, the worker's RNG stream, virtual clock, cost-model
        jitter stream, and the profiler's open-operation stack — so
        :meth:`restore` can resume on a *fresh* stack with records, clocks
        and annotations bit-for-bit identical to an uninterrupted run.
        """
        worker = self.worker
        pending = None
        if self._ticket is not None:
            ticket = self._ticket
            pending = {"features": ticket.features, "metadata": ticket.metadata,
                       "done": ticket.done, "priors": ticket.priors,
                       "values": ticket.values}
        profiler = worker.profiler
        prof_state = None
        if profiler is not None:
            prof_state = {
                "names_starts": list(zip(profiler._operation_names,
                                         profiler._operation_starts)),
                "python_resume_us": profiler._python_resume_us,
                "phase": profiler.phase,
            }
        state = {
            "num_games": self.num_games,
            "steps": self.steps,
            "games_done": self._games_done,
            "finished": self._finished,
            "result": self.result,
            "mcts": self._mcts,
            "position": self._position,
            "game_examples": self._game_examples,
            "move_number": self._move_number,
            "search": self._search,
            "request": self._request,
            "pending": pending,
            "worker_rng": worker.rng,
            "clock_us": worker.system.clock.now_us,
            "cost_rng_state": worker.system.cost_model._rng.bit_generator.state,
            "profiler": prof_state,
            "search_open": self._search_op is not None,
            "leaf_open": self._leaf_op is not None,
        }
        import pickle
        return pickle.dumps(state)

    @classmethod
    def restore(cls, worker: SelfPlayWorker, blob: bytes) -> "GameDriver":
        """Rebuild a snapshotted driver on a fresh (identically-built) worker.

        Adopts the snapshot's RNG streams and clock, re-submits the pending
        ticket (if any) to the fresh worker's service client, and re-opens
        the profiler annotations that were open at snapshot time without
        re-charging their entry overhead.
        """
        import pickle
        state = pickle.loads(blob)
        driver = cls.__new__(cls)
        driver.worker = worker
        driver.num_games = state["num_games"]
        driver.steps = state["steps"]
        driver.result = state["result"]
        driver._games_done = state["games_done"]
        driver._finished = state["finished"]
        driver._mcts = state["mcts"]
        driver._position = state["position"]
        driver._game_examples = state["game_examples"]
        driver._move_number = state["move_number"]
        driver._search = state["search"]
        driver._request = state["request"]
        driver._ticket = None
        driver._search_op = None
        driver._leaf_op = None
        # Adopt the snapshotted RNG streams and clock on the fresh stack.
        worker.rng = state["worker_rng"]
        if driver._mcts is not None:
            driver._mcts.rng = worker.rng
            driver._mcts.evaluator = worker._profiled_evaluator
        system = worker.system
        system.clock.advance_to(state["clock_us"])
        system.cost_model._rng.bit_generator.state = state["cost_rng_state"]
        profiler = worker.profiler
        prof_state = state["profiler"]
        pending = state["pending"]
        ops = prof_state["names_starts"] if prof_state else []
        if profiler is not None and prof_state is not None:
            profiler.set_phase(prof_state["phase"])
        if state["search_open"]:
            if profiler is not None and ops:
                name, start = ops[0]
                driver._search_op = profiler.reopen_operation(name, start)
            else:
                driver._search_op = _NULL_OPERATION
            driver._search_op.__enter__()
        if state["leaf_open"] and profiler is not None and len(ops) > 1:
            name, start = ops[1]
            driver._leaf_op = profiler.reopen_operation(
                name, start, metadata=pending["metadata"] if pending else None)
            driver._leaf_op.__enter__()
        if profiler is not None and prof_state is not None:
            profiler._python_resume_us = prof_state["python_resume_us"]
        if pending is not None:
            if worker._client is None:
                raise RuntimeError("snapshot holds a pending inference ticket but the "
                                   "restoring worker has no inference client")
            driver._ticket = worker._client.submit(pending["features"],
                                                   metadata=pending["metadata"])
            if pending["done"]:
                driver._ticket.priors = pending["priors"]
                driver._ticket.values = pending["values"]
        return driver

    def _finish_game(self) -> None:
        position = self._position
        outcome = position.result() if position.is_over else float(np.sign(position.board.area_score()) or 1.0)
        if outcome > 0:
            self.result.black_wins += 1
        for features, policy, to_play in self._game_examples:
            value_target = outcome if to_play == 1 else -outcome
            self.result.examples.append(SelfPlayExample(features=features, policy_target=policy,
                                                        value_target=float(value_target)))
        self._games_done += 1
        self._mcts = None
        self._position = None
        self._game_examples = []
        if self._games_done >= self.num_games:
            self._finished = True
