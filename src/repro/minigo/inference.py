"""Batched cross-worker inference service for Minigo self-play.

The paper's self-play workload spends its accelerator time in ``expand_leaf``
— per-leaf, batch-size-1 network evaluations issued independently by every
MCTS worker.  Each evaluation pays the full Python -> Backend transition,
kernel-launch and feed-preparation cost for a single board position, so the
GPU runs tiny kernels back to back while the CPU spends most of its time in
dispatch: exactly the hardware-underutilizing pattern RL-Scope's breakdowns
expose (finding F.11).

:class:`InferenceService` fixes the shape of that work.  Self-play workers
submit leaf-evaluation requests (a block of feature rows each) to a shared
service holding **one** model replica; the service coalesces everything
pending into batched network calls of up to ``max_batch`` rows, scatters the
resulting policy/value rows back to the requesting workers, and charges each
waiting worker's virtual clock for the batch it rode in.  Row order within a
batch never changes row results (the network is applied row-wise), so a
``leaf_batch=1`` client reproduces the legacy per-leaf game records exactly
while larger batches cut engine calls roughly ``batch``-fold.

Attribution: every request can carry a metadata dict which the service fills
with the serving batch shape (``batch_rows``, ``batch_clients``,
``batch_time_us``, ``engine_calls``).  Workers attach that dict to their
``expand_leaf`` operation events, so the profiler can attribute shared
batched time back to the requesting workers without changing any overlap
quantity — operation-event metadata takes no part in
``compute_overlap``/``parallel_overlap``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..backend import functional as F
from ..backend.context import use_engine
from ..backend.engine import BackendEngine, CompiledFunction
from ..backend.tensor import Tensor
from ..system import System

#: Compiled-function name used for batched evaluations; matches the legacy
#: per-worker evaluator so cost-model lookups and trace names stay stable.
EVALUATE_FUNCTION_NAME = "expand_leaf"


@dataclass
class InferenceStats:
    """Counters describing the batching behaviour of one service."""

    requests: int = 0            #: submitted tickets
    rows: int = 0                #: total feature rows evaluated
    engine_calls: int = 0        #: batched network calls issued
    max_batch_rows: int = 0      #: largest single batch
    cross_worker_batches: int = 0  #: batches serving more than one worker
    rows_by_worker: Dict[str, int] = field(default_factory=dict)
    batch_sizes: List[int] = field(default_factory=list)

    @property
    def mean_batch_rows(self) -> float:
        return self.rows / self.engine_calls if self.engine_calls else 0.0

    @property
    def calls_saved(self) -> int:
        """Engine calls avoided versus the per-leaf (one call per row) path."""
        return self.rows - self.engine_calls


class InferenceTicket:
    """Handle for one submitted evaluation request."""

    def __init__(self, client: "InferenceClient", features: np.ndarray,
                 metadata: Optional[dict]) -> None:
        self.client = client
        self.features = features
        self.metadata = metadata
        self.priors: Optional[np.ndarray] = None
        self.values: Optional[np.ndarray] = None

    @property
    def num_rows(self) -> int:
        return int(self.features.shape[0])

    @property
    def done(self) -> bool:
        return self.priors is not None

    def result(self) -> Tuple[np.ndarray, np.ndarray]:
        """The (priors, values) rows for this request; flushes if pending."""
        if not self.done:
            self.client.service.flush()
        assert self.priors is not None and self.values is not None
        return self.priors, self.values


class InferenceClient:
    """One worker's connection to the shared service.

    The client remembers the worker's system (whose clock pays for batch
    latency) and engine (on which batches hosted by this client execute).
    """

    def __init__(self, service: "InferenceService", system: System,
                 engine: BackendEngine, worker: str) -> None:
        self.service = service
        self.system = system
        self.engine = engine
        self.worker = worker

    def submit(self, features: np.ndarray, *, metadata: Optional[dict] = None) -> InferenceTicket:
        return self.service.submit(self, features, metadata=metadata)

    def evaluate(self, features: np.ndarray, *, metadata: Optional[dict] = None
                 ) -> Tuple[np.ndarray, np.ndarray]:
        """Synchronous evaluation: submit, flush the queue, return our rows."""
        ticket = self.submit(features, metadata=metadata)
        self.service.flush()
        return ticket.result()


class InferenceService:
    """Coalesces leaf-evaluation requests from many workers into batched calls.

    One model replica (``network``) serves every connected worker.  Requests
    queue up via :meth:`submit`; :meth:`flush` concatenates all pending rows,
    evaluates them in chunks of at most ``max_batch`` rows on the engine of
    each chunk's first requester, and scatters results back.  Every worker
    with rows in a chunk waits for that chunk: its virtual clock advances by
    the chunk's evaluation time.
    """

    def __init__(self, network, *, max_batch: int = 64, name: str = "inference_service") -> None:
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        self.network = network
        self.max_batch = max_batch
        self.name = name
        self.stats = InferenceStats()
        self._pending: List[InferenceTicket] = []
        self._compiled: Dict[int, CompiledFunction] = {}

    # ---------------------------------------------------------------- clients
    def connect(self, system: System, engine: BackendEngine,
                *, worker: Optional[str] = None) -> InferenceClient:
        """Register a worker; returns its client handle."""
        return InferenceClient(self, system, engine, worker or system.worker)

    def _compiled_for(self, engine: BackendEngine) -> CompiledFunction:
        # Keyed by id(engine): safe because the cached CompiledFunction holds
        # a strong reference to its engine, so a cached id can never be
        # recycled by a new engine while the entry exists.
        key = id(engine)
        compiled = self._compiled.get(key)
        if compiled is None:
            compiled = engine.function(self._forward, name=EVALUATE_FUNCTION_NAME, num_feeds=1)
            self._compiled[key] = compiled
        return compiled

    def _forward(self, features: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        logits, value = self.network(Tensor(features))
        priors = F.softmax(logits)
        return priors.numpy(), value.numpy().reshape(-1)

    # ----------------------------------------------------------------- queue
    def submit(self, client: InferenceClient, features: np.ndarray,
               *, metadata: Optional[dict] = None) -> InferenceTicket:
        """Queue a block of feature rows for batched evaluation."""
        features = np.asarray(features)
        if features.ndim != 2 or features.shape[0] == 0:
            raise ValueError(f"expected a non-empty [rows, features] array, got shape {features.shape}")
        ticket = InferenceTicket(client, features, metadata)
        self._pending.append(ticket)
        self.stats.requests += 1
        return ticket

    @property
    def pending_rows(self) -> int:
        return sum(ticket.num_rows for ticket in self._pending)

    def flush(self) -> int:
        """Evaluate everything pending; returns the number of engine calls."""
        if not self._pending:
            return 0
        tickets, self._pending = self._pending, []

        # Flatten tickets into (ticket, row-within-ticket) spans and cut the
        # row stream into chunks of at most max_batch rows.
        spans: List[Tuple[InferenceTicket, int, int]] = []  # (ticket, lo, hi)
        for ticket in tickets:
            spans.append((ticket, 0, ticket.num_rows))
        calls = 0
        while spans:
            chunk: List[Tuple[InferenceTicket, int, int]] = []
            rows = 0
            while spans and rows < self.max_batch:
                ticket, lo, hi = spans[0]
                take = min(hi - lo, self.max_batch - rows)
                chunk.append((ticket, lo, lo + take))
                rows += take
                if lo + take == hi:
                    spans.pop(0)
                else:
                    spans[0] = (ticket, lo + take, hi)
            self._evaluate_chunk(chunk, rows)
            calls += 1
        return calls

    def _evaluate_chunk(self, chunk: List[Tuple[InferenceTicket, int, int]], rows: int) -> None:
        """Run one batched engine call and scatter rows back to its tickets."""
        host = chunk[0][0].client
        features = np.concatenate([t.features[lo:hi] for t, lo, hi in chunk], axis=0)
        start_us = host.system.clock.now_us
        with use_engine(host.engine):
            priors, values = self._compiled_for(host.engine)(features)
        batch_time_us = host.system.clock.now_us - start_us

        clients = {id(t.client): t.client for t, _, _ in chunk}
        # Everyone who rode the batch waits for it; the host's clock already
        # advanced while the engine executed.  Non-host riders advance here,
        # outside any of their own operation annotations, so their wait shows
        # as untracked time unless the caller wraps submit()+flush() in an
        # annotation itself (the pool's sync path does; the cross-worker
        # scheduler follow-on in ROADMAP.md will move this into the rider's
        # expand_leaf event).
        for client in clients.values():
            if client is not host:
                client.system.clock.advance(batch_time_us)

        self.stats.engine_calls += 1
        self.stats.rows += rows
        self.stats.max_batch_rows = max(self.stats.max_batch_rows, rows)
        self.stats.batch_sizes.append(rows)
        if len(clients) > 1:
            self.stats.cross_worker_batches += 1

        offset = 0
        for ticket, lo, hi in chunk:
            take = hi - lo
            worker = ticket.client.worker
            self.stats.rows_by_worker[worker] = self.stats.rows_by_worker.get(worker, 0) + take
            prior_rows = priors[offset:offset + take]
            value_rows = values[offset:offset + take]
            if ticket.priors is None:
                ticket.priors, ticket.values = prior_rows, value_rows
            else:  # ticket split across chunks
                ticket.priors = np.concatenate([ticket.priors, prior_rows], axis=0)
                ticket.values = np.concatenate([ticket.values, value_rows], axis=0)
            if ticket.metadata is not None:
                meta = ticket.metadata
                meta["inference_service"] = self.name
                meta["batch_rows"] = meta.get("batch_rows", 0) + rows
                meta["batch_clients"] = max(meta.get("batch_clients", 0), len(clients))
                meta["batch_time_us"] = meta.get("batch_time_us", 0.0) + batch_time_us
                meta["engine_calls"] = meta.get("engine_calls", 0) + 1
            offset += take
