"""Batched cross-worker inference service for Minigo self-play.

The paper's self-play workload spends its accelerator time in ``expand_leaf``
— per-leaf, batch-size-1 network evaluations issued independently by every
MCTS worker.  Each evaluation pays the full Python -> Backend transition,
kernel-launch and feed-preparation cost for a single board position, so the
GPU runs tiny kernels back to back while the CPU spends most of its time in
dispatch: exactly the hardware-underutilizing pattern RL-Scope's breakdowns
expose (finding F.11).

:class:`InferenceService` fixes the shape of that work.  Self-play workers
submit leaf-evaluation requests (a block of feature rows each) to a shared
service holding **one** model replica; the service coalesces everything
pending into batched network calls of up to ``max_batch`` rows, scatters the
resulting policy/value rows back to the requesting workers, and charges each
waiting worker's virtual clock for the batch it rode in.

Two serving paths exist:

* :meth:`InferenceService.flush` — the synchronous path used by workers that
  evaluate in place: everything pending is served *now* on the host worker's
  clock, and non-host riders are charged the batch time (inside their own
  ``expand_leaf`` annotation when they carry a profiler).
* :meth:`InferenceService.serve_queued` — the event-driven path used by the
  :class:`~repro.minigo.workers.PoolScheduler`: requests are packed in
  **arrival order** under an explicit flush policy (``max-batch`` departs a
  batch when it is full, ``timeout`` additionally departs a partial batch
  ``timeout_us`` after its first request arrived, ``unbatched`` serves each
  ticket alone — the bit-for-bit determinism baseline), each batch starts at
  ``max(departure time, service free time)``, and every participant is
  charged its own queueing delay *plus* the batch time instead of batch time
  only.

Attribution: every request can carry a metadata dict which the service fills
with the serving batch shape (``batch_rows``, ``batch_clients``,
``batch_time_us``, ``engine_calls``, and under the queueing model
``queue_delay_us``).  Workers attach that dict to their ``expand_leaf``
operation events, so the profiler can attribute shared batched time back to
the requesting workers without changing any overlap quantity —
operation-event metadata takes no part in
``compute_overlap``/``parallel_overlap``.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..backend import functional as F
from ..backend.context import use_engine
from ..backend.engine import BackendEngine, CompiledFunction
from ..backend.tensor import Tensor
from ..system import System

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids an import cycle
    from ..profiler.api import Profiler

#: Compiled-function name used for batched evaluations; matches the legacy
#: per-worker evaluator so cost-model lookups and trace names stay stable.
EVALUATE_FUNCTION_NAME = "expand_leaf"

#: Flush policies understood by :meth:`InferenceService.serve_queued`.
FLUSH_UNBATCHED = "unbatched"    #: one ticket per engine call, no queueing
FLUSH_MAX_BATCH = "max-batch"    #: depart when full (or when serving triggers)
FLUSH_TIMEOUT = "timeout"        #: like max-batch, plus a partial-batch deadline
FLUSH_POLICIES = (FLUSH_UNBATCHED, FLUSH_MAX_BATCH, FLUSH_TIMEOUT)


class BatchSizeStats:
    """Bounded summary of per-call batch sizes.

    Long runs issue one engine call per batch, so an unbounded list of sizes
    grows linearly with virtual time.  This keeps a fixed-size power-of-two
    histogram plus a fixed-capacity uniform reservoir sample (Vitter's
    algorithm R with a private, deterministic RNG), so memory stays constant
    no matter how many calls the service makes.
    """

    #: histogram bucket upper bounds: [1], (1,2], (2,4], ... (512,1024], (1024,inf)
    BUCKET_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

    def __init__(self, reservoir_size: int = 256, seed: int = 0) -> None:
        if reservoir_size <= 0:
            raise ValueError("reservoir_size must be positive")
        self.reservoir_size = reservoir_size
        self.counts = [0] * (len(self.BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total_rows = 0
        self.max_rows = 0
        self._reservoir: List[int] = []
        self._rng = np.random.default_rng(seed)

    def append(self, rows: int) -> None:
        self.count += 1
        self.total_rows += rows
        self.max_rows = max(self.max_rows, rows)
        self.counts[bisect_right(self.BUCKET_BOUNDS, rows - 1)] += 1
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(rows)
        else:
            slot = int(self._rng.integers(0, self.count))
            if slot < self.reservoir_size:
                self._reservoir[slot] = rows

    @property
    def mean(self) -> float:
        return self.total_rows / self.count if self.count else 0.0

    @property
    def sample(self) -> List[int]:
        """The reservoir: a uniform sample of all observed batch sizes."""
        return list(self._reservoir)

    def histogram(self) -> List[Tuple[int, Optional[int], int]]:
        """Non-empty buckets as ``(lo_exclusive, hi_inclusive | None, count)``."""
        buckets = []
        lo = 0
        for i, hi in enumerate(self.BUCKET_BOUNDS):
            if self.counts[i]:
                buckets.append((lo, hi, self.counts[i]))
            lo = hi
        if self.counts[-1]:
            buckets.append((lo, None, self.counts[-1]))
        return buckets

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BatchSizeStats(count={self.count}, mean={self.mean:.2f}, "
                f"max={self.max_rows})")


@dataclass
class InferenceStats:
    """Counters describing the batching behaviour of one service."""

    requests: int = 0            #: submitted tickets
    rows: int = 0                #: total feature rows evaluated
    engine_calls: int = 0        #: batched network calls issued
    max_batch_rows: int = 0      #: largest single batch
    cross_worker_batches: int = 0  #: batches serving more than one worker
    capacity: int = 0            #: the service's max_batch (occupancy denominator)
    rows_by_worker: Dict[str, int] = field(default_factory=dict)
    batch_sizes: BatchSizeStats = field(default_factory=BatchSizeStats)
    # Queueing model (serve_queued only): arrival -> batch-start delays.
    queued_waits: int = 0        #: ticket/batch participations measured
    queue_delay_us: float = 0.0  #: total arrival -> batch-start delay
    max_queue_delay_us: float = 0.0

    @property
    def mean_batch_rows(self) -> float:
        return self.rows / self.engine_calls if self.engine_calls else 0.0

    @property
    def calls_saved(self) -> int:
        """Engine calls avoided versus the per-leaf (one call per row) path."""
        return self.rows - self.engine_calls

    @property
    def mean_occupancy(self) -> float:
        """Mean batch fill as a fraction of the service's capacity."""
        return self.mean_batch_rows / self.capacity if self.capacity else 0.0

    @property
    def mean_queue_delay_us(self) -> float:
        return self.queue_delay_us / self.queued_waits if self.queued_waits else 0.0

    @property
    def cross_worker_share(self) -> float:
        """Fraction of engine calls that served more than one worker."""
        return self.cross_worker_batches / self.engine_calls if self.engine_calls else 0.0


class InferenceTicket:
    """Handle for one submitted evaluation request."""

    def __init__(self, client: "InferenceClient", features: np.ndarray,
                 metadata: Optional[dict], *, arrival_us: float = 0.0, seq: int = 0) -> None:
        self.client = client
        self.features = features
        self.metadata = metadata
        self.arrival_us = arrival_us   #: submitting worker's clock at submit
        self.seq = seq                 #: service-wide submission order
        self.priors: Optional[np.ndarray] = None
        self.values: Optional[np.ndarray] = None

    @property
    def num_rows(self) -> int:
        return int(self.features.shape[0])

    @property
    def done(self) -> bool:
        return self.priors is not None

    def result(self) -> Tuple[np.ndarray, np.ndarray]:
        """The (priors, values) rows for this request; flushes if pending."""
        if not self.done:
            self.client.service.flush()
        assert self.priors is not None and self.values is not None
        return self.priors, self.values


class InferenceClient:
    """One worker's connection to the shared service.

    The client remembers the worker's system (whose clock pays for batch
    latency), engine (on which batches hosted by this client execute), and
    optionally the network its rows must be evaluated with (candidate
    evaluation serves two models from one queue; rows of different networks
    never share a matmul) and the worker's profiler (so rider wait time can
    be charged inside an ``expand_leaf`` annotation instead of showing up as
    untracked time).
    """

    def __init__(self, service: "InferenceService", system: System,
                 engine: BackendEngine, worker: str, *,
                 network=None, profiler: Optional["Profiler"] = None) -> None:
        self.service = service
        self.system = system
        self.engine = engine
        self.worker = worker
        self.network = network if network is not None else service.network
        self.profiler = profiler

    def submit(self, features: np.ndarray, *, metadata: Optional[dict] = None) -> InferenceTicket:
        return self.service.submit(self, features, metadata=metadata)

    def evaluate(self, features: np.ndarray, *, metadata: Optional[dict] = None
                 ) -> Tuple[np.ndarray, np.ndarray]:
        """Synchronous evaluation: submit, flush the queue, return our rows."""
        ticket = self.submit(features, metadata=metadata)
        self.service.flush()
        return ticket.result()


class InferenceService:
    """Coalesces leaf-evaluation requests from many workers into batched calls.

    One model replica (``network``) serves every connected worker (a client
    may override the network, e.g. the candidate model during evaluation;
    batches never mix rows of different networks).  Requests queue up via
    :meth:`submit`; :meth:`flush` serves everything synchronously on the host
    worker's clock, while :meth:`serve_queued` applies the arrival-order
    queueing model used by the event-driven pool scheduler.
    """

    def __init__(self, network, *, max_batch: int = 64, name: str = "inference_service") -> None:
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        self.network = network
        self.max_batch = max_batch
        self.name = name
        self.stats = InferenceStats(capacity=max_batch)
        self._pending: List[InferenceTicket] = []
        self._compiled: Dict[Tuple[int, int], Tuple[CompiledFunction, object]] = {}
        self._seq = 0
        #: virtual time at which the replica finishes its last queued batch
        self._service_free_us = 0.0

    # ---------------------------------------------------------------- clients
    def connect(self, system: System, engine: BackendEngine,
                *, worker: Optional[str] = None, network=None,
                profiler: Optional["Profiler"] = None) -> InferenceClient:
        """Register a worker; returns its client handle."""
        return InferenceClient(self, system, engine, worker or system.worker,
                               network=network, profiler=profiler)

    def _compiled_for(self, engine: BackendEngine, network) -> CompiledFunction:
        # Keyed by (id(engine), id(network)): safe because the cache entry
        # holds strong references to both, so a cached id can never be
        # recycled while the entry exists.
        key = (id(engine), id(network))
        entry = self._compiled.get(key)
        if entry is None:
            compiled = engine.function(
                lambda features: self._forward(network, features),
                name=EVALUATE_FUNCTION_NAME, num_feeds=1)
            entry = (compiled, network)
            self._compiled[key] = entry
        return entry[0]

    def _forward(self, network, features: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        logits, value = network(Tensor(features))
        priors = F.softmax(logits)
        return priors.numpy(), value.numpy().reshape(-1)

    # ----------------------------------------------------------------- queue
    def submit(self, client: InferenceClient, features: np.ndarray,
               *, metadata: Optional[dict] = None) -> InferenceTicket:
        """Queue a block of feature rows for batched evaluation."""
        features = np.asarray(features)
        if features.ndim != 2 or features.shape[0] == 0:
            raise ValueError(f"expected a non-empty [rows, features] array, got shape {features.shape}")
        ticket = InferenceTicket(client, features, metadata,
                                 arrival_us=client.system.clock.now_us, seq=self._seq)
        self._seq += 1
        self._pending.append(ticket)
        self.stats.requests += 1
        return ticket

    @property
    def pending_rows(self) -> int:
        return sum(ticket.num_rows for ticket in self._pending)

    @property
    def pending_tickets(self) -> int:
        return len(self._pending)

    def earliest_pending_arrival_us(self) -> Optional[float]:
        """Arrival time of the oldest queued request (None when idle)."""
        if not self._pending:
            return None
        return min(ticket.arrival_us for ticket in self._pending)

    def _take_pending(self, arrival_cutoff_us: Optional[float] = None
                      ) -> List[List[InferenceTicket]]:
        """Drain the queue into per-network ticket groups (submission order).

        With ``arrival_cutoff_us`` only tickets that arrived at or before the
        cutoff are taken; later ones stay queued (they can still gather more
        riders before their own deadline)."""
        if arrival_cutoff_us is None:
            tickets, self._pending = self._pending, []
        else:
            tickets = [t for t in self._pending if t.arrival_us <= arrival_cutoff_us]
            self._pending = [t for t in self._pending if t.arrival_us > arrival_cutoff_us]
        groups: Dict[int, List[InferenceTicket]] = {}
        for ticket in tickets:
            groups.setdefault(id(ticket.client.network), []).append(ticket)
        return list(groups.values())

    # ------------------------------------------------------ synchronous flush
    def flush(self) -> int:
        """Evaluate everything pending on the host's clock, immediately.

        This is the synchronous serving path: chunks execute *now* on the
        engine of each chunk's first requester, and non-host riders are
        charged the batch time.  The event-driven scheduler uses
        :meth:`serve_queued` instead, which models arrival-order queueing
        delay.  Returns the number of engine calls issued.
        """
        calls = 0
        for tickets in self._take_pending():
            # Flatten tickets into (ticket, row-within-ticket) spans and cut
            # the row stream into chunks of at most max_batch rows.
            spans: List[Tuple[InferenceTicket, int, int]] = []  # (ticket, lo, hi)
            for ticket in tickets:
                spans.append((ticket, 0, ticket.num_rows))
            while spans:
                chunk: List[Tuple[InferenceTicket, int, int]] = []
                rows = 0
                while spans and rows < self.max_batch:
                    ticket, lo, hi = spans[0]
                    take = min(hi - lo, self.max_batch - rows)
                    chunk.append((ticket, lo, lo + take))
                    rows += take
                    if lo + take == hi:
                        spans.pop(0)
                    else:
                        spans[0] = (ticket, lo + take, hi)
                self._evaluate_chunk(chunk, rows)
                calls += 1
        return calls

    def _evaluate_chunk(self, chunk: List[Tuple[InferenceTicket, int, int]], rows: int) -> None:
        """Run one batched engine call now and scatter rows back to its tickets."""
        host = chunk[0][0].client
        priors, values, batch_time_us = self._execute(host, chunk)
        self._service_free_us = max(self._service_free_us, host.system.clock.now_us)

        clients = {id(t.client): t.client for t, _, _ in chunk}
        # Everyone who rode the batch waits for it; the host's clock already
        # advanced while the engine executed.  Non-host riders advance here,
        # inside an expand_leaf annotation of their own when they carry a
        # profiler (without one the wait would show as untracked time).
        for client in clients.values():
            if client is not host:
                self._charge_rider(client, batch_time_us, rows, len(clients))
        self._scatter(chunk, rows, priors, values, batch_time_us, len(clients))

    def _charge_rider(self, client: InferenceClient, batch_time_us: float,
                      rows: int, num_clients: int) -> None:
        """Advance a non-host rider's clock by the batch time it waited for."""
        profiler = client.profiler
        if profiler is None or not profiler.config.annotations:
            client.system.clock.advance(batch_time_us)
            return
        if profiler.current_operation is not None:
            # Already suspended inside its own annotation (the event-driven
            # driver holds expand_leaf open across the wait); the open
            # operation covers the advance.
            client.system.clock.advance(batch_time_us)
            return
        with profiler.operation(EVALUATE_FUNCTION_NAME, metadata={
                "batch_rider": True, "inference_service": self.name,
                "batch_rows": rows, "batch_clients": num_clients,
                "batch_time_us": batch_time_us}):
            client.system.clock.advance(batch_time_us)

    # ------------------------------------------------------- queued serving
    def serve_queued(self, *, policy: str = FLUSH_MAX_BATCH,
                     timeout_us: Optional[float] = None,
                     arrival_cutoff_us: Optional[float] = None) -> int:
        """Serve everything pending under the arrival-order queueing model.

        Requests are packed into batches in arrival order.  A batch *departs*
        (becomes eligible to run) when it is full — ``max_batch`` rows — or,
        under the ``timeout`` policy, at ``first arrival + timeout_us`` even
        if partial.  It then *starts* at ``max(departure, service free
        time)``: the single replica serializes batches, so a busy replica
        delays later batches.  Every participant's clock is advanced to the
        batch's completion time, charging it its own queueing delay plus the
        batch time — a rider that arrived early pays more waiting than one
        that arrived just before departure.

        ``unbatched`` serves each ticket on its own, on its own clock, with
        no queueing — the determinism baseline: per-worker timelines are
        bit-for-bit those of the synchronous sequential pool.  Returns the
        number of engine calls issued.
        """
        if policy not in FLUSH_POLICIES:
            raise ValueError(f"unknown flush policy {policy!r}; expected one of {FLUSH_POLICIES}")
        if policy == FLUSH_TIMEOUT:
            if timeout_us is None or timeout_us < 0:
                raise ValueError("the timeout policy requires a non-negative timeout_us")
        else:
            timeout_us = None
        calls = 0
        for tickets in self._take_pending(arrival_cutoff_us):
            tickets.sort(key=lambda t: (t.arrival_us, t.seq))
            if policy == FLUSH_UNBATCHED:
                for ticket in tickets:
                    lo = 0
                    while lo < ticket.num_rows:
                        hi = min(lo + self.max_batch, ticket.num_rows)
                        self._evaluate_chunk([(ticket, lo, hi)], hi - lo)
                        calls += 1
                        lo = hi
                continue
            batches = self._plan_batches(tickets, timeout_us)
            if arrival_cutoff_us is not None and batches:
                # Cutoff-triggered serve (a deadline passed): a trailing
                # partial batch whose own deadline lies beyond the cutoff is
                # not due yet — hold its tickets back so they can still
                # gather riders, unless a split ticket straddles the served
                # batches (partial re-queueing would double-serve its rows).
                chunk, rows, depart_us = batches[-1]
                if rows < self.max_batch and depart_us > arrival_cutoff_us:
                    served = {id(t) for c, _, _ in batches[:-1] for t, _, _ in c}
                    if not any(id(t) in served for t, _, _ in chunk):
                        self._pending.extend(t for t, _, _ in chunk)
                        batches.pop()
            for chunk, rows, depart_us in batches:
                self._serve_chunk_queued(chunk, rows, depart_us)
                calls += 1
        return calls

    def _plan_batches(self, tickets: List[InferenceTicket], timeout_us: Optional[float]
                      ) -> List[Tuple[List[Tuple[InferenceTicket, int, int]], int, float]]:
        """Greedy arrival-order packing into ``(chunk, rows, depart_us)`` batches.

        A full batch departs when its last rider arrives; a partial batch
        departs at ``first arrival + timeout_us`` when a timeout is set (the
        server waits out the deadline hoping to fill), else when its last
        rider arrives (the serve trigger means no more arrivals are coming).
        """
        batches: List[Tuple[List[Tuple[InferenceTicket, int, int]], int, float]] = []
        chunk: List[Tuple[InferenceTicket, int, int]] = []
        rows = 0
        first_arrival = 0.0
        last_arrival = 0.0

        def close(depart_us: float) -> None:
            nonlocal chunk, rows
            batches.append((chunk, rows, depart_us))
            chunk, rows = [], 0

        for ticket in tickets:
            if chunk and timeout_us is not None and ticket.arrival_us > first_arrival + timeout_us:
                close(first_arrival + timeout_us)
            lo = 0
            while lo < ticket.num_rows:
                if not chunk:
                    first_arrival = ticket.arrival_us
                take = min(ticket.num_rows - lo, self.max_batch - rows)
                chunk.append((ticket, lo, lo + take))
                rows += take
                lo += take
                last_arrival = ticket.arrival_us
                if rows == self.max_batch:
                    # A full batch departs when its last rider arrives (the
                    # admission check above guarantees that is within the
                    # first rider's deadline).
                    close(last_arrival)
        if chunk:
            close(first_arrival + timeout_us if timeout_us is not None else last_arrival)
        return batches

    def _serve_chunk_queued(self, chunk: List[Tuple[InferenceTicket, int, int]],
                            rows: int, depart_us: float) -> None:
        """Run one planned batch under the queueing model and scatter results."""
        host = chunk[0][0].client
        start_us = max(depart_us, self._service_free_us)
        # The host worker (first requester) waits for the batch to start...
        host.system.clock.advance_to(start_us)
        start_us = host.system.clock.now_us  # host may already be past depart
        priors, values, batch_time_us = self._execute(host, chunk)
        end_us = host.system.clock.now_us
        self._service_free_us = end_us
        # ...and every rider waits for it to finish: wait + batch time, each
        # from its own arrival, inside its own (open) expand_leaf annotation.
        clients = {id(t.client): t.client for t, _, _ in chunk}
        for client in clients.values():
            if client is not host:
                client.system.clock.advance_to(end_us)
        seen = set()
        for ticket, _, _ in chunk:
            if id(ticket) in seen:
                continue
            seen.add(id(ticket))
            delay = max(start_us - ticket.arrival_us, 0.0)
            self.stats.queued_waits += 1
            self.stats.queue_delay_us += delay
            self.stats.max_queue_delay_us = max(self.stats.max_queue_delay_us, delay)
            if ticket.metadata is not None:
                ticket.metadata["queue_delay_us"] = ticket.metadata.get("queue_delay_us", 0.0) + delay
        self._scatter(chunk, rows, priors, values, batch_time_us, len(clients))

    # -------------------------------------------------------- shared helpers
    def _execute(self, host: InferenceClient, chunk: List[Tuple[InferenceTicket, int, int]]
                 ) -> Tuple[np.ndarray, np.ndarray, float]:
        """One batched engine call on the host's engine/clock/network."""
        features = np.concatenate([t.features[lo:hi] for t, lo, hi in chunk], axis=0)
        start_us = host.system.clock.now_us
        with use_engine(host.engine):
            priors, values = self._compiled_for(host.engine, host.network)(features)
        return priors, values, host.system.clock.now_us - start_us

    def _scatter(self, chunk: List[Tuple[InferenceTicket, int, int]], rows: int,
                 priors: np.ndarray, values: np.ndarray, batch_time_us: float,
                 num_clients: int) -> None:
        """Record stats for one served batch and hand rows back to its tickets."""
        self.stats.engine_calls += 1
        self.stats.rows += rows
        self.stats.max_batch_rows = max(self.stats.max_batch_rows, rows)
        self.stats.batch_sizes.append(rows)
        if num_clients > 1:
            self.stats.cross_worker_batches += 1

        offset = 0
        for ticket, lo, hi in chunk:
            take = hi - lo
            worker = ticket.client.worker
            self.stats.rows_by_worker[worker] = self.stats.rows_by_worker.get(worker, 0) + take
            prior_rows = priors[offset:offset + take]
            value_rows = values[offset:offset + take]
            if ticket.priors is None:
                ticket.priors, ticket.values = prior_rows, value_rows
            else:  # ticket split across chunks
                ticket.priors = np.concatenate([ticket.priors, prior_rows], axis=0)
                ticket.values = np.concatenate([ticket.values, value_rows], axis=0)
            if ticket.metadata is not None:
                meta = ticket.metadata
                meta["inference_service"] = self.name
                meta["batch_rows"] = meta.get("batch_rows", 0) + rows
                meta["batch_clients"] = max(meta.get("batch_clients", 0), num_clients)
                meta["batch_time_us"] = meta.get("batch_time_us", 0.0) + batch_time_us
                meta["engine_calls"] = meta.get("engine_calls", 0) + 1
            offset += take
