"""Compatibility shim: the batched inference service lives in :mod:`repro.rollout.inference`.

The service started life here as the Minigo self-play batcher; the
env-agnostic rollout refactor moved it (unchanged in behaviour) into the
shared rollout core so any :class:`~repro.rollout.driver.StepwiseDriver`
workload can route policy evaluation through it.  Every public name is
re-exported so existing imports — tests, experiments, the serving tier —
keep working.
"""

from __future__ import annotations

from ..rollout.inference import (
    EVALUATE_FUNCTION_NAME,
    FLUSH_MAX_BATCH,
    FLUSH_POLICIES,
    FLUSH_TIMEOUT,
    FLUSH_UNBATCHED,
    ROUTING_LEAST_LOADED,
    ROUTING_POLICIES,
    ROUTING_ROUND_ROBIN,
    ROUTING_STICKY,
    BatchSizeStats,
    InferenceClient,
    InferenceService,
    InferenceStats,
    InferenceTicket,
    LeastLoadedRouting,
    ModelReplica,
    ReservoirSample,
    RoundRobinRouting,
    RoutingPolicy,
    StickyRouting,
    make_routing_policy,
)

__all__ = [
    "EVALUATE_FUNCTION_NAME",
    "FLUSH_MAX_BATCH",
    "FLUSH_POLICIES",
    "FLUSH_TIMEOUT",
    "FLUSH_UNBATCHED",
    "ROUTING_LEAST_LOADED",
    "ROUTING_POLICIES",
    "ROUTING_ROUND_ROBIN",
    "ROUTING_STICKY",
    "BatchSizeStats",
    "InferenceClient",
    "InferenceService",
    "InferenceStats",
    "InferenceTicket",
    "LeastLoadedRouting",
    "ModelReplica",
    "ReservoirSample",
    "RoundRobinRouting",
    "RoutingPolicy",
    "StickyRouting",
    "make_routing_policy",
]
