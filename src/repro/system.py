"""Per-worker wiring of the simulated stack.

A :class:`System` bundles the virtual clock, cost model, GPU device and CUDA
runtime that one worker (process) of a workload uses.  Multiple systems can
share a single :class:`~repro.hw.gpu.GPUDevice` — that is how the Minigo
scale-up workload models 16 self-play processes contending for one GPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .cuda.cupti import Cupti
from .cuda.runtime import CudaRuntime
from .hw.clock import VirtualClock
from .hw.costmodel import CostModel, CostModelConfig
from .hw.gpu import GPUDevice


@dataclass
class System:
    """Everything a simulated worker needs to account for time."""

    clock: VirtualClock
    cost_model: CostModel
    device: GPUDevice
    cuda: CudaRuntime
    worker: str = "worker_0"

    @classmethod
    def create(
        cls,
        *,
        seed: int = 0,
        config: Optional[CostModelConfig] = None,
        device: Optional[GPUDevice] = None,
        cupti: Optional[Cupti] = None,
        worker: str = "worker_0",
    ) -> "System":
        """Build a fresh worker system (optionally sharing ``device``/``cupti``)."""
        cost_model = CostModel(config, seed=seed)
        clock = VirtualClock()
        if device is None:
            device = GPUDevice(cost_model=cost_model)
        cuda = CudaRuntime(clock, cost_model, device, worker=worker, cupti=cupti)
        return cls(clock=clock, cost_model=cost_model, device=device, cuda=cuda, worker=worker)

    # ------------------------------------------------------------------ time
    def cpu_work(self, units: float = 1.0) -> None:
        """Advance the clock by ``units`` of interpreted Python work."""
        self.clock.advance(self.cost_model.python_work(units))

    def crossing(self) -> None:
        """Advance the clock by one Python <-> C marshalling crossing."""
        self.clock.advance(self.cost_model.python_c_crossing())

    @property
    def now_us(self) -> float:
        return self.clock.now_us

    @property
    def now_sec(self) -> float:
        return self.clock.now_sec
