"""Simulated hardware substrate: virtual clock, cost model, GPU device, nvidia-smi."""

from .clock import VirtualClock
from .costmodel import (
    CostModel,
    CostModelConfig,
    ProfilingOverheads,
    DEFAULT_CUDA_API_US,
    DEFAULT_CUPTI_INFLATION_US,
    DEFAULT_SIM_STEP_US,
    scaled_sim_costs,
)
from .gpu import GPUActivity, GPUDevice, DEFAULT_STREAM, COPY_STREAM
from .nvidia_smi import UtilizationReport, UtilizationSample, sample_utilization

__all__ = [
    "VirtualClock",
    "CostModel",
    "CostModelConfig",
    "ProfilingOverheads",
    "DEFAULT_CUDA_API_US",
    "DEFAULT_CUPTI_INFLATION_US",
    "DEFAULT_SIM_STEP_US",
    "scaled_sim_costs",
    "GPUActivity",
    "GPUDevice",
    "DEFAULT_STREAM",
    "COPY_STREAM",
    "UtilizationReport",
    "UtilizationSample",
    "sample_utilization",
]
