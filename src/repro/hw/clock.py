"""Virtual CPU clock used by every simulated component.

The reproduction runs on a discrete-event hardware model instead of a real
CPU/GPU pair (see DESIGN.md section 4).  Every simulated component advances a
:class:`VirtualClock` by the durations produced by the cost model; the
profiler only ever *reads* timestamps from the clock, exactly as the original
RL-Scope only reads ``clock_gettime`` values.

Timestamps are microseconds stored as ``float``.  A worker process in a
multi-process workload owns its own clock; clocks of different workers share
epoch zero so that their GPU activity can be merged on a single device
timeline.
"""

from __future__ import annotations

from typing import Callable, List


class VirtualClock:
    """Monotonic virtual clock measured in microseconds."""

    __slots__ = ("_now_us", "_observers")

    def __init__(self, start_us: float = 0.0) -> None:
        if start_us < 0:
            raise ValueError(f"clock cannot start at a negative time: {start_us}")
        self._now_us = float(start_us)
        self._observers: List[Callable[[float, float], None]] = []

    @property
    def now_us(self) -> float:
        """Current virtual time in microseconds."""
        return self._now_us

    @property
    def now_sec(self) -> float:
        """Current virtual time in seconds."""
        return self._now_us / 1e6

    def advance(self, duration_us: float) -> float:
        """Advance the clock by ``duration_us`` and return the new time.

        Negative durations are rejected: virtual time is monotonic.
        """
        if duration_us < 0:
            raise ValueError(f"cannot advance clock by a negative duration: {duration_us}")
        start = self._now_us
        self._now_us += float(duration_us)
        for observer in self._observers:
            observer(start, self._now_us)
        return self._now_us

    def advance_to(self, time_us: float) -> float:
        """Advance the clock to an absolute time (no-op if already past it)."""
        if time_us > self._now_us:
            self.advance(time_us - self._now_us)
        return self._now_us

    def add_observer(self, observer: Callable[[float, float], None]) -> None:
        """Register a callback invoked as ``observer(start_us, end_us)`` on every advance."""
        self._observers.append(observer)

    def remove_observer(self, observer: Callable[[float, float], None]) -> None:
        self._observers.remove(observer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now_us={self._now_us:.3f})"
