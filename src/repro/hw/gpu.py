"""Simulated GPU device.

The device keeps one timeline per stream.  CPU-side code (the simulated CUDA
runtime) *launches* work: a kernel or memcpy starts at
``max(launch completion time, stream free time)`` and occupies the stream for
its modelled duration.  The CPU does not wait unless it synchronizes — this
asynchrony is what produces the CPU/GPU overlap that RL-Scope's analysis
measures.

A single :class:`GPUDevice` may be shared by several workers (the Minigo
scale-up workload); their activity interleaves on the device timeline just as
kernels from multiple processes share a real GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .costmodel import CostModel

DEFAULT_STREAM = 0
COPY_STREAM = 1


@dataclass(frozen=True)
class GPUActivity:
    """One completed unit of device work (kernel execution or memcpy)."""

    kind: str          #: ``"kernel"`` or ``"memcpy"``
    name: str          #: kernel name, or memcpy direction (``"HtoD"`` / ``"DtoH"``)
    start_us: float
    end_us: float
    stream: int = DEFAULT_STREAM
    worker: str = "worker_0"

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


@dataclass
class GPUDevice:
    """A virtual accelerator with per-stream FIFO execution."""

    name: str = "SimRTX2080Ti"
    cost_model: CostModel = field(default_factory=CostModel)
    _stream_free_us: Dict[int, float] = field(default_factory=dict)
    _activity: List[GPUActivity] = field(default_factory=list)

    # ------------------------------------------------------------------ exec
    def launch_kernel(
        self,
        name: str,
        *,
        flops: float,
        bytes_accessed: float,
        launch_complete_us: float,
        stream: int = DEFAULT_STREAM,
        worker: str = "worker_0",
        duration_us: Optional[float] = None,
    ) -> GPUActivity:
        """Enqueue a kernel; returns its device-side activity record."""
        if duration_us is None:
            duration_us = self.cost_model.kernel_duration(flops, bytes_accessed)
        return self._enqueue("kernel", name, duration_us, launch_complete_us, stream, worker)

    def enqueue_memcpy(
        self,
        direction: str,
        *,
        num_bytes: float,
        launch_complete_us: float,
        stream: int = COPY_STREAM,
        worker: str = "worker_0",
        duration_us: Optional[float] = None,
    ) -> GPUActivity:
        """Enqueue an async host<->device copy on the copy stream."""
        if direction not in ("HtoD", "DtoH", "DtoD"):
            raise ValueError(f"unknown memcpy direction: {direction!r}")
        if duration_us is None:
            duration_us = self.cost_model.memcpy_duration(num_bytes)
        return self._enqueue("memcpy", direction, duration_us, launch_complete_us, stream, worker)

    def _enqueue(
        self,
        kind: str,
        name: str,
        duration_us: float,
        launch_complete_us: float,
        stream: int,
        worker: str,
    ) -> GPUActivity:
        if duration_us < 0:
            raise ValueError("device work cannot have a negative duration")
        free_at = self._stream_free_us.get(stream, 0.0)
        start = max(launch_complete_us, free_at)
        end = start + duration_us
        self._stream_free_us[stream] = end
        activity = GPUActivity(kind=kind, name=name, start_us=start, end_us=end, stream=stream, worker=worker)
        self._activity.append(activity)
        return activity

    # ------------------------------------------------------------------ sync
    def stream_free_time(self, stream: int = DEFAULT_STREAM) -> float:
        """Time at which all currently queued work on ``stream`` completes."""
        return self._stream_free_us.get(stream, 0.0)

    def device_free_time(self) -> float:
        """Time at which all queued work on every stream completes."""
        if not self._stream_free_us:
            return 0.0
        return max(self._stream_free_us.values())

    def synchronize(self, now_us: float, stream: Optional[int] = None) -> float:
        """Return the time at which a CPU sync started at ``now_us`` returns."""
        target = self.stream_free_time(stream) if stream is not None else self.device_free_time()
        return max(now_us, target)

    # ------------------------------------------------------------- inspection
    @property
    def activity(self) -> List[GPUActivity]:
        """All device activity, in launch order."""
        return list(self._activity)

    def kernels(self) -> List[GPUActivity]:
        return [a for a in self._activity if a.kind == "kernel"]

    def memcpys(self) -> List[GPUActivity]:
        return [a for a in self._activity if a.kind == "memcpy"]

    def busy_time_us(self, kinds: Iterable[str] = ("kernel", "memcpy")) -> float:
        """Total device-busy time (union of activity intervals of ``kinds``)."""
        intervals = sorted(
            (a.start_us, a.end_us) for a in self._activity if a.kind in kinds
        )
        busy = 0.0
        cur_start: Optional[float] = None
        cur_end = 0.0
        for start, end in intervals:
            if cur_start is None:
                cur_start, cur_end = start, end
            elif start <= cur_end:
                cur_end = max(cur_end, end)
            else:
                busy += cur_end - cur_start
                cur_start, cur_end = start, end
        if cur_start is not None:
            busy += cur_end - cur_start
        return busy

    def reset(self) -> None:
        """Clear all activity and stream state (new workload on same device)."""
        self._stream_free_us.clear()
        self._activity.clear()
