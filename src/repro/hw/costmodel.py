"""Deterministic cost model for the simulated hardware/software stack.

Every duration in the reproduction comes from this module: interpreted Python
work, Python <-> C crossings, ML-backend dispatch, CUDA API calls, GPU kernel
execution, simulator steps, and the book-keeping overhead that RL-Scope itself
injects when profiling is enabled.

The model is intentionally simple — a catalogue of base durations plus a
seeded multiplicative jitter — but it is the *only* source of time in the
system.  The profiler never reads it; overhead correction has to recover the
book-keeping durations through calibration, as in the paper (Appendix C).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional

import numpy as np

#: Default CPU-side cost (microseconds) of each simulated CUDA API call.
DEFAULT_CUDA_API_US: Dict[str, float] = {
    "cudaLaunchKernel": 6.5,
    "cudaMemcpyAsync": 5.0,
    "cudaMemsetAsync": 3.0,
    "cudaStreamSynchronize": 4.0,
    "cudaDeviceSynchronize": 6.0,
    "cudaMalloc": 40.0,
    "cudaFree": 25.0,
}

#: Extra CPU inflation (microseconds) added to each CUDA API call when the
#: (closed-source, in the real system) CUPTI profiling library is enabled.
DEFAULT_CUPTI_INFLATION_US: Dict[str, float] = {
    "cudaLaunchKernel": 3.0,
    "cudaMemcpyAsync": 1.0,
    "cudaMemsetAsync": 0.8,
    "cudaStreamSynchronize": 0.6,
    "cudaDeviceSynchronize": 0.6,
    "cudaMalloc": 1.5,
    "cudaFree": 1.0,
}

#: Simulator step cost in microseconds, keyed by simulator id.  These follow
#: the low/medium/high complexity ordering of Figure 6 in the paper.
DEFAULT_SIM_STEP_US: Dict[str, float] = {
    "Pong": 300.0,
    "Hopper": 240.0,
    "Walker2D": 330.0,
    "HalfCheetah": 290.0,
    "Ant": 750.0,
    "Go": 160.0,
    "AirLearning": 40_000.0,
}

#: Per-op dispatch cost inside the ML backend, keyed by (flavor, engine).
DEFAULT_BACKEND_OP_DISPATCH_US: Dict[str, float] = {
    "tensorflow:graph": 3.5,
    "tensorflow:autograph": 3.5,
    "tensorflow:eager": 16.0,
    "pytorch:eager": 9.0,
}

#: Cost of one Python -> Backend call boundary (argument marshalling, feed
#: dict handling, pybind/ctypes crossing), keyed by (flavor, engine).
DEFAULT_BACKEND_CALL_US: Dict[str, float] = {
    "tensorflow:graph": 55.0,
    "tensorflow:autograph": 60.0,
    "tensorflow:eager": 28.0,
    "pytorch:eager": 14.0,
}


@dataclass
class ProfilingOverheads:
    """Ground-truth book-keeping durations injected when profiling is on.

    These are what delta / difference-of-average calibration must estimate.
    """

    #: Python <-> C interception wrapper, per intercepted call (start+end).
    pyprof_interception_us: float = 1.7
    #: CUDA API interception hook, per intercepted API call.
    cuda_interception_us: float = 1.3
    #: High-level operation annotation, per ``with rls.operation(...)`` block.
    annotation_us: float = 2.6
    #: Closed-source CUPTI inflation per CUDA API call (by API name).
    cupti_inflation_us: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_CUPTI_INFLATION_US)
    )


@dataclass
class CostModelConfig:
    """All tunable base durations of the simulated stack (microseconds)."""

    # -- interpreted Python -------------------------------------------------
    python_op_us: float = 0.9          #: one unit of interpreted Python work
    python_c_crossing_us: float = 0.7  #: marshalling for a Python <-> C crossing

    # -- ML backend ---------------------------------------------------------
    backend_call_us: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_BACKEND_CALL_US)
    )
    backend_op_dispatch_us: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_BACKEND_OP_DISPATCH_US)
    )
    #: Backend-internal inflation applied to op dispatch inside Autograph
    #: functions (the F.6 anomaly: inflated Backend time that is *not*
    #: explained by extra Python->Backend transitions).
    autograph_dispatch_inflation: float = 12.0

    # -- CUDA runtime / GPU -------------------------------------------------
    cuda_api_us: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_CUDA_API_US))
    gpu_flops_per_us: float = 13.45e6     #: 13.45 TFLOP/s fp32 (RTX 2080 Ti)
    gpu_bytes_per_us: float = 616e3       #: 616 GB/s device memory bandwidth
    gpu_kernel_fixed_us: float = 1.9      #: fixed kernel launch/teardown on device
    pcie_bytes_per_us: float = 12e3       #: 12 GB/s effective PCIe bandwidth
    pcie_latency_us: float = 1.2

    # -- simulators ----------------------------------------------------------
    sim_step_us: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_SIM_STEP_US))
    sim_reset_factor: float = 4.0         #: reset costs this many step durations

    # -- profiler book-keeping ----------------------------------------------
    profiling: ProfilingOverheads = field(default_factory=ProfilingOverheads)

    # -- stochasticity -------------------------------------------------------
    jitter: float = 0.02                  #: relative sigma of multiplicative jitter
    seed: int = 0


class CostModel:
    """Samples durations for the simulated stack.

    Parameters
    ----------
    config:
        Base durations; see :class:`CostModelConfig`.
    seed:
        Overrides ``config.seed`` when given.  Each :class:`CostModel` holds
        its own RNG so that independent workers draw independent jitter.
    """

    def __init__(self, config: Optional[CostModelConfig] = None, seed: Optional[int] = None) -> None:
        self.config = config if config is not None else CostModelConfig()
        self._rng = np.random.default_rng(self.config.seed if seed is None else seed)

    # ------------------------------------------------------------------ util
    def _jittered(self, base_us: float) -> float:
        """Apply multiplicative jitter; durations never go negative."""
        if base_us <= 0:
            return 0.0
        if self.config.jitter <= 0:
            return float(base_us)
        factor = 1.0 + self._rng.normal(0.0, self.config.jitter)
        return float(base_us * max(factor, 0.05))

    # ---------------------------------------------------------------- python
    def python_work(self, units: float = 1.0) -> float:
        """Duration of ``units`` of interpreted Python work."""
        return self._jittered(self.config.python_op_us * units)

    def python_c_crossing(self) -> float:
        """Marshalling cost of one Python <-> C transition (one direction)."""
        return self._jittered(self.config.python_c_crossing_us)

    # --------------------------------------------------------------- backend
    def backend_call(self, flavor: str, engine: str) -> float:
        """Cost of one Python -> Backend call boundary."""
        key = f"{flavor}:{engine}"
        try:
            base = self.config.backend_call_us[key]
        except KeyError as exc:
            raise KeyError(f"no backend_call_us entry for {key!r}") from exc
        return self._jittered(base)

    def backend_op_dispatch(self, flavor: str, engine: str, *, in_autograph_fn: bool = False) -> float:
        """Cost of dispatching one backend operator (CPU side)."""
        key = f"{flavor}:{engine}"
        try:
            base = self.config.backend_op_dispatch_us[key]
        except KeyError as exc:
            raise KeyError(f"no backend_op_dispatch_us entry for {key!r}") from exc
        if in_autograph_fn and engine == "autograph":
            base *= self.config.autograph_dispatch_inflation
        return self._jittered(base)

    # ------------------------------------------------------------------ CUDA
    def cuda_api(self, api_name: str) -> float:
        """CPU-side duration of a CUDA API call (without CUPTI inflation)."""
        base = self.config.cuda_api_us.get(api_name)
        if base is None:
            base = 4.0
        return self._jittered(base)

    def cupti_inflation(self, api_name: str) -> float:
        """Extra CPU time added to ``api_name`` when CUPTI is enabled."""
        base = self.config.profiling.cupti_inflation_us.get(api_name, 0.5)
        return self._jittered(base)

    def kernel_duration(self, flops: float, bytes_accessed: float) -> float:
        """GPU-side duration of a kernel from its FLOP count and bytes moved."""
        compute_us = flops / self.config.gpu_flops_per_us
        memory_us = bytes_accessed / self.config.gpu_bytes_per_us
        return self._jittered(self.config.gpu_kernel_fixed_us + max(compute_us, memory_us))

    def memcpy_duration(self, num_bytes: float) -> float:
        """GPU-side (copy engine) duration of a host<->device memcpy."""
        return self._jittered(self.config.pcie_latency_us + num_bytes / self.config.pcie_bytes_per_us)

    # ------------------------------------------------------------ simulators
    def sim_step(self, sim_id: str) -> float:
        """CPU duration of one simulator step."""
        try:
            base = self.config.sim_step_us[sim_id]
        except KeyError as exc:
            raise KeyError(f"no sim_step_us entry for simulator {sim_id!r}") from exc
        return self._jittered(base)

    def sim_reset(self, sim_id: str) -> float:
        """CPU duration of a simulator reset."""
        return self.sim_step(sim_id) * self.config.sim_reset_factor

    # -------------------------------------------------- profiler book-keeping
    def interception_overhead(self, kind: str) -> float:
        """Ground-truth book-keeping duration for one interception event.

        ``kind`` is one of ``"pyprof"`` (Python <-> C interception),
        ``"cuda"`` (CUDA API interception) or ``"annotation"`` (operation
        annotation book-keeping).
        """
        prof = self.config.profiling
        if kind == "pyprof":
            base = prof.pyprof_interception_us
        elif kind == "cuda":
            base = prof.cuda_interception_us
        elif kind == "annotation":
            base = prof.annotation_us
        else:
            raise ValueError(f"unknown interception overhead kind: {kind!r}")
        return self._jittered(base)

    # ---------------------------------------------------------------- variants
    def with_overrides(self, **overrides: object) -> "CostModel":
        """Return a new :class:`CostModel` with config fields replaced."""
        new_config = replace(self.config, **overrides)  # type: ignore[arg-type]
        return CostModel(new_config)


def scaled_sim_costs(scale: float, base: Optional[Mapping[str, float]] = None) -> Dict[str, float]:
    """Utility: scale every simulator step cost by ``scale`` (used in sweeps)."""
    source = dict(base) if base is not None else dict(DEFAULT_SIM_STEP_US)
    return {name: cost * scale for name, cost in source.items()}
