"""Coarse-grained GPU utilization metric, as reported by ``nvidia-smi``.

Per the NVIDIA documentation cited in the paper, ``nvidia-smi`` reports the
percentage of *sample periods* (between 1/6 s and 1 s) during which one or
more kernels were executing — not the fraction of time the GPU was actually
busy.  RL workloads issue many tiny kernels, so nearly every sample period
contains at least one kernel and the metric saturates at 100 % even though
true GPU-bound time is negligible (finding F.11).

This module reproduces that sampling semantics over the simulated device
timeline so the Figure 8 experiment can contrast the two metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .gpu import GPUActivity, GPUDevice


@dataclass(frozen=True)
class UtilizationSample:
    """One sample period of the coarse utilization metric."""

    start_us: float
    end_us: float
    utilized: bool


@dataclass(frozen=True)
class UtilizationReport:
    """Result of sampling the device timeline like ``nvidia-smi`` does."""

    samples: List[UtilizationSample]
    sample_period_us: float
    #: percentage of sample periods with >= 1 kernel active (what nvidia-smi shows)
    reported_utilization_pct: float
    #: true fraction of the sampled window during which the device was busy
    true_busy_pct: float
    window_start_us: float
    window_end_us: float


def _overlaps(activity: GPUActivity, start_us: float, end_us: float) -> bool:
    return activity.start_us < end_us and activity.end_us > start_us


def sample_utilization(
    device: GPUDevice,
    *,
    window_start_us: float = 0.0,
    window_end_us: float | None = None,
    sample_period_us: float = 250_000.0,
    kinds: Sequence[str] = ("kernel",),
) -> UtilizationReport:
    """Sample the device timeline with an ``nvidia-smi``-style utilization counter.

    Parameters
    ----------
    device:
        The simulated GPU whose activity timeline is sampled.
    window_start_us, window_end_us:
        The sampled window; defaults to the full span of device activity.
    sample_period_us:
        The sampling period.  ``nvidia-smi`` uses 1/6 s to 1 s; the default of
        0.25 s falls inside that range.
    kinds:
        Which activity kinds count as "GPU is being used".
    """
    if sample_period_us <= 0:
        raise ValueError("sample_period_us must be positive")
    activity = [a for a in device.activity if a.kind in kinds]
    if window_end_us is None:
        window_end_us = max((a.end_us for a in activity), default=window_start_us)
    if window_end_us < window_start_us:
        raise ValueError("window_end_us must be >= window_start_us")

    samples: List[UtilizationSample] = []
    cursor = window_start_us
    utilized_count = 0
    while cursor < window_end_us:
        period_end = min(cursor + sample_period_us, window_end_us)
        utilized = any(_overlaps(a, cursor, period_end) for a in activity)
        samples.append(UtilizationSample(start_us=cursor, end_us=period_end, utilized=utilized))
        if utilized:
            utilized_count += 1
        cursor = period_end

    reported = 100.0 * utilized_count / len(samples) if samples else 0.0
    window = window_end_us - window_start_us
    busy = device.busy_time_us(kinds=kinds) if window > 0 else 0.0
    # busy_time_us covers all activity; clamp to the window for the true metric.
    true_pct = 100.0 * min(busy, window) / window if window > 0 else 0.0
    return UtilizationReport(
        samples=samples,
        sample_period_us=sample_period_us,
        reported_utilization_pct=reported,
        true_busy_pct=true_pct,
        window_start_us=window_start_us,
        window_end_us=window_end_us,
    )
