"""Simulated CUDA runtime, CUPTI activity collection, and kernel specifications."""

from .cupti import Cupti, CuptiApiRecord, CuptiKernelRecord, CuptiMemcpyRecord
from .kernels import (
    FLOAT_BYTES,
    KernelSpec,
    bias_kernel,
    elementwise_kernel,
    gemm_kernel,
    optimizer_kernel,
    reduction_kernel,
    render_kernel,
    tensor_bytes,
)
from .runtime import ApiCallResult, CudaApiHook, CudaRuntime

__all__ = [
    "Cupti",
    "CuptiApiRecord",
    "CuptiKernelRecord",
    "CuptiMemcpyRecord",
    "FLOAT_BYTES",
    "KernelSpec",
    "bias_kernel",
    "elementwise_kernel",
    "gemm_kernel",
    "optimizer_kernel",
    "reduction_kernel",
    "render_kernel",
    "tensor_bytes",
    "ApiCallResult",
    "CudaApiHook",
    "CudaRuntime",
]
