"""Kernel specifications: how much device work each backend operator issues.

A :class:`KernelSpec` carries the name plus FLOP / byte estimates that the
GPU cost model turns into a device-side duration.  Helpers build specs for
the primitive operators used by the miniature ML backend (GEMM, elementwise,
reductions, optimizer updates) and for the AirLearning render workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

FLOAT_BYTES = 4


@dataclass(frozen=True)
class KernelSpec:
    """A single GPU kernel launch request."""

    name: str
    flops: float
    bytes_accessed: float

    def scaled(self, factor: float) -> "KernelSpec":
        return KernelSpec(self.name, self.flops * factor, self.bytes_accessed * factor)


def _size(shape: Iterable[int]) -> int:
    total = 1
    for dim in shape:
        total *= int(dim)
    return total


def gemm_kernel(m: int, n: int, k: int, name: str = "volta_sgemm") -> KernelSpec:
    """Dense matmul ``(m, k) @ (k, n)``: 2*m*n*k FLOPs."""
    flops = 2.0 * m * n * k
    bytes_accessed = FLOAT_BYTES * (m * k + k * n + m * n)
    return KernelSpec(name=name, flops=flops, bytes_accessed=bytes_accessed)


def elementwise_kernel(shape: Tuple[int, ...], ops_per_element: float = 1.0, name: str = "elementwise") -> KernelSpec:
    """Pointwise kernel over ``shape`` (add, relu, tanh, scale, ...)."""
    n = _size(shape)
    return KernelSpec(name=name, flops=ops_per_element * n, bytes_accessed=FLOAT_BYTES * 2.0 * n)


def reduction_kernel(shape: Tuple[int, ...], name: str = "reduce") -> KernelSpec:
    """Reduction kernel over ``shape`` (sum, mean, max)."""
    n = _size(shape)
    return KernelSpec(name=name, flops=float(n), bytes_accessed=FLOAT_BYTES * float(n))

def bias_kernel(shape: Tuple[int, ...], name: str = "bias_add") -> KernelSpec:
    return elementwise_kernel(shape, ops_per_element=1.0, name=name)


def optimizer_kernel(num_params: int, name: str = "adam_update") -> KernelSpec:
    """Fused optimizer update over ``num_params`` parameters."""
    # Adam: ~8 FLOPs per parameter, reads/writes param + two moments + grad.
    return KernelSpec(name=name, flops=8.0 * num_params, bytes_accessed=FLOAT_BYTES * 8.0 * num_params)


def render_kernel(width: int, height: int, samples: int = 4, name: str = "ue4_render") -> KernelSpec:
    """Photo-realistic frame render (AirLearning's UE4-style simulator)."""
    pixels = width * height
    # A few hundred shader FLOPs per pixel per sample is representative of a
    # deferred-rendering pass; the absolute value only needs to dwarf RL kernels.
    return KernelSpec(name=name, flops=400.0 * pixels * samples, bytes_accessed=FLOAT_BYTES * 16.0 * pixels)


def tensor_bytes(shape: Tuple[int, ...]) -> int:
    """Bytes occupied by a float32 tensor of ``shape``."""
    return FLOAT_BYTES * _size(shape)
