"""Simulated CUDA runtime API.

The miniature ML backend and the AirLearning renderer call this runtime the
way TensorFlow / PyTorch call ``libcudart``: every call costs CPU time (the
"CUDA API" category in RL-Scope's breakdown), optionally inflated by CUPTI
when activity collection is enabled, and asynchronously enqueues device work
on the shared :class:`~repro.hw.gpu.GPUDevice`.

External profilers attach through two mechanisms, mirroring the real stack:

* :meth:`CudaRuntime.add_hook` — the ``librlscope.so``-style interception
  hook.  Its book-keeping time is *included in the API call span* (as it is
  in the real tool, where the hook runs inside the CUPTI callback) and it is
  notified with the completed API record.
* :class:`~repro.cuda.cupti.Cupti` activity records — enabled separately,
  and adding its own closed-source inflation to each API call.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Protocol

from ..hw.clock import VirtualClock
from ..hw.costmodel import CostModel
from ..hw.gpu import COPY_STREAM, DEFAULT_STREAM, GPUActivity, GPUDevice
from .cupti import Cupti, CuptiApiRecord
from .kernels import KernelSpec


class CudaApiHook(Protocol):
    """Interface for interception hooks (RL-Scope's ``librlscope.so``)."""

    def api_overhead_us(self, api_name: str) -> float:
        """Book-keeping CPU time to include inside the API call span."""

    def on_api(self, record: CuptiApiRecord) -> None:
        """Notification after the API call completes (no time cost)."""


@dataclass(frozen=True)
class ApiCallResult:
    """Outcome of one simulated CUDA API call."""

    record: CuptiApiRecord
    activity: Optional[GPUActivity] = None


class CudaRuntime:
    """Per-worker CUDA runtime bound to a clock, cost model and device."""

    def __init__(
        self,
        clock: VirtualClock,
        cost_model: CostModel,
        device: GPUDevice,
        *,
        worker: str = "worker_0",
        cupti: Optional[Cupti] = None,
    ) -> None:
        self.clock = clock
        self.cost_model = cost_model
        self.device = device
        self.worker = worker
        #: stream used when callers do not specify one; multi-process workloads
        #: give each worker its own stream (its own CUDA context, in effect).
        self.default_stream = DEFAULT_STREAM
        self.cupti = cupti if cupti is not None else Cupti()
        self._hooks: List[CudaApiHook] = []
        self.api_call_counts: Counter[str] = Counter()
        self.kernel_launch_count = 0
        self.memcpy_count = 0

    # ----------------------------------------------------------------- hooks
    def add_hook(self, hook: CudaApiHook) -> None:
        self._hooks.append(hook)

    def remove_hook(self, hook: CudaApiHook) -> None:
        self._hooks.remove(hook)

    # ------------------------------------------------------------- API calls
    def _api_call(self, api_name: str) -> CuptiApiRecord:
        """Advance the clock across one CPU-side CUDA API call and record it."""
        self.api_call_counts[api_name] += 1
        duration = self.cost_model.cuda_api(api_name)
        if self.cupti.enabled:
            duration += self.cost_model.cupti_inflation(api_name)
        for hook in self._hooks:
            duration += hook.api_overhead_us(api_name)
        start = self.clock.now_us
        self.clock.advance(duration)
        end = self.clock.now_us
        record = self.cupti.record_api(api_name, start, end, self.worker)
        for hook in self._hooks:
            hook.on_api(record)
        return record

    def launch_kernel(self, kernel: KernelSpec, *, stream: Optional[int] = None) -> ApiCallResult:
        """``cudaLaunchKernel``: CPU-side launch, asynchronous device execution."""
        if stream is None:
            stream = self.default_stream
        record = self._api_call("cudaLaunchKernel")
        self.kernel_launch_count += 1
        activity = self.device.launch_kernel(
            kernel.name,
            flops=kernel.flops,
            bytes_accessed=kernel.bytes_accessed,
            launch_complete_us=record.end_us,
            stream=stream,
            worker=self.worker,
            # Sample the duration from this worker's own cost model: a
            # kernel's execution time must not depend on how other workers'
            # launches interleave on the shared device (whose cost model has
            # one shared jitter RNG), and the per-worker model is the one
            # carrying the workload's CostModelConfig.
            duration_us=self.cost_model.kernel_duration(kernel.flops, kernel.bytes_accessed),
        )
        self.cupti.record_kernel(activity, record.correlation_id)
        return ApiCallResult(record=record, activity=activity)

    def memcpy_async(self, direction: str, num_bytes: float, *, stream: Optional[int] = None) -> ApiCallResult:
        """``cudaMemcpyAsync``: CPU-side call, asynchronous copy-engine transfer."""
        if stream is None:
            stream = COPY_STREAM + 10_000 + self.default_stream
        record = self._api_call("cudaMemcpyAsync")
        self.memcpy_count += 1
        activity = self.device.enqueue_memcpy(
            direction,
            num_bytes=num_bytes,
            launch_complete_us=record.end_us,
            stream=stream,
            worker=self.worker,
            duration_us=self.cost_model.memcpy_duration(num_bytes),
        )
        self.cupti.record_memcpy(activity, record.correlation_id)
        return ApiCallResult(record=record, activity=activity)

    def memset_async(self, num_bytes: float, *, stream: Optional[int] = None) -> ApiCallResult:
        """``cudaMemsetAsync``: modelled as a tiny device-side fill."""
        if stream is None:
            stream = self.default_stream
        record = self._api_call("cudaMemsetAsync")
        activity = self.device.launch_kernel(
            "memset",
            flops=0.0,
            bytes_accessed=float(num_bytes),
            launch_complete_us=record.end_us,
            stream=stream,
            worker=self.worker,
            duration_us=self.cost_model.kernel_duration(0.0, float(num_bytes)),
        )
        self.cupti.record_kernel(activity, record.correlation_id)
        return ApiCallResult(record=record, activity=activity)

    def malloc(self, num_bytes: float) -> ApiCallResult:
        """``cudaMalloc``: CPU-only allocation cost."""
        del num_bytes  # allocation size does not change the modelled CPU cost
        return ApiCallResult(record=self._api_call("cudaMalloc"))

    def free(self) -> ApiCallResult:
        """``cudaFree``."""
        return ApiCallResult(record=self._api_call("cudaFree"))

    # ---------------------------------------------------------------- syncs
    def stream_synchronize(self, stream: Optional[int] = None) -> ApiCallResult:
        """``cudaStreamSynchronize``: block the CPU until the stream drains."""
        if stream is None:
            stream = COPY_STREAM + 10_000 + self.default_stream
        record = self._api_call("cudaStreamSynchronize")
        self.clock.advance_to(self.device.synchronize(self.clock.now_us, stream=stream))
        return ApiCallResult(record=record)

    def device_synchronize(self) -> ApiCallResult:
        """``cudaDeviceSynchronize``: block the CPU until the device drains."""
        record = self._api_call("cudaDeviceSynchronize")
        self.clock.advance_to(self.device.synchronize(self.clock.now_us))
        return ApiCallResult(record=record)

    # ------------------------------------------------------------ statistics
    @property
    def total_api_calls(self) -> int:
        return sum(self.api_call_counts.values())
