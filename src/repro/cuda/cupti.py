"""Simulated CUPTI: the CUDA Profiling Tools Interface.

The real CUPTI library records *activity records* for CUDA API calls, kernel
executions and memory copies, and — important for RL-Scope's calibration —
its closed-source hooks inflate the CPU-side duration of each CUDA API call
by an amount that depends on the API (Appendix C.2 of the paper).

This module reproduces both behaviours.  The inflation amounts come from the
cost model but are *not* visible to the profiler: RL-Scope has to recover
them through difference-of-average calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..hw.gpu import GPUActivity


@dataclass(frozen=True)
class CuptiApiRecord:
    """Activity record for one CUDA API call (CPU side)."""

    api_name: str
    start_us: float
    end_us: float
    worker: str
    correlation_id: int

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


@dataclass(frozen=True)
class CuptiKernelRecord:
    """Activity record for one kernel execution (device side)."""

    kernel_name: str
    start_us: float
    end_us: float
    stream: int
    worker: str
    correlation_id: int

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


@dataclass(frozen=True)
class CuptiMemcpyRecord:
    """Activity record for one memory copy (device side)."""

    direction: str
    start_us: float
    end_us: float
    stream: int
    worker: str
    correlation_id: int

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


ApiCallback = Callable[[CuptiApiRecord], None]
ActivityCallback = Callable[[object], None]


@dataclass
class Cupti:
    """Activity-record collector attached to a :class:`~repro.cuda.runtime.CudaRuntime`."""

    enabled: bool = False
    api_records: List[CuptiApiRecord] = field(default_factory=list)
    kernel_records: List[CuptiKernelRecord] = field(default_factory=list)
    memcpy_records: List[CuptiMemcpyRecord] = field(default_factory=list)
    _api_callbacks: List[ApiCallback] = field(default_factory=list)
    _next_correlation_id: int = 1

    # ----------------------------------------------------------------- state
    def enable(self) -> None:
        """Enable activity collection (and, implicitly, CUPTI's CPU inflation)."""
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.api_records.clear()
        self.kernel_records.clear()
        self.memcpy_records.clear()
        self._next_correlation_id = 1

    def subscribe_api(self, callback: ApiCallback) -> None:
        """Register a callback invoked for every API record while enabled."""
        self._api_callbacks.append(callback)

    def unsubscribe_api(self, callback: ApiCallback) -> None:
        self._api_callbacks.remove(callback)

    # --------------------------------------------------------------- records
    def next_correlation_id(self) -> int:
        cid = self._next_correlation_id
        self._next_correlation_id += 1
        return cid

    def record_api(self, api_name: str, start_us: float, end_us: float, worker: str,
                   correlation_id: Optional[int] = None) -> CuptiApiRecord:
        if correlation_id is None:
            correlation_id = self.next_correlation_id()
        record = CuptiApiRecord(api_name=api_name, start_us=start_us, end_us=end_us,
                                worker=worker, correlation_id=correlation_id)
        if self.enabled:
            self.api_records.append(record)
            for callback in self._api_callbacks:
                callback(record)
        return record

    def record_kernel(self, activity: GPUActivity, correlation_id: int) -> Optional[CuptiKernelRecord]:
        if not self.enabled:
            return None
        record = CuptiKernelRecord(
            kernel_name=activity.name,
            start_us=activity.start_us,
            end_us=activity.end_us,
            stream=activity.stream,
            worker=activity.worker,
            correlation_id=correlation_id,
        )
        self.kernel_records.append(record)
        return record

    def record_memcpy(self, activity: GPUActivity, correlation_id: int) -> Optional[CuptiMemcpyRecord]:
        if not self.enabled:
            return None
        record = CuptiMemcpyRecord(
            direction=activity.name,
            start_us=activity.start_us,
            end_us=activity.end_us,
            stream=activity.stream,
            worker=activity.worker,
            correlation_id=correlation_id,
        )
        self.memcpy_records.append(record)
        return record
