"""MuJoCo-style locomotion environments: Walker2D, Hopper, HalfCheetah, Ant.

Observation/action dimensionalities match the OpenAI Gym MuJoCo tasks the
paper evaluates on; the per-step CPU cost comes from the cost model
(``DEFAULT_SIM_STEP_US``), ordered by each body's real complexity.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..system import System
from .base import Env, StepResult
from .physics import BodySpec, LocomotionDynamics
from .spaces import Box


class LocomotionEnv(Env):
    """Common behaviour of the MuJoCo-style locomotion tasks."""

    spec: BodySpec
    max_episode_steps: int = 1_000

    def __init__(self, system: System, *, seed: int = 0) -> None:
        super().__init__(system, seed=seed)
        self.observation_space = Box(low=-np.inf, high=np.inf, shape=(self.spec.obs_dim,))
        self.action_space = Box(low=-1.0, high=1.0, shape=(self.spec.num_joints,))
        self.dynamics = LocomotionDynamics(self.spec, self.rng)
        self._steps_in_episode = 0

    def _reset_state(self) -> np.ndarray:
        self.dynamics.reset()
        self._steps_in_episode = 0
        return self.dynamics.observation(self.spec.obs_dim)

    def _step_state(self, action: np.ndarray) -> StepResult:
        forward_velocity, ctrl_cost = self.dynamics.step(action)
        self._steps_in_episode += 1
        healthy = self.dynamics.is_healthy
        reward = (
            self.spec.forward_reward_weight * forward_velocity
            - ctrl_cost
            + (self.spec.healthy_reward if healthy else 0.0)
        )
        done = (not healthy) or self._steps_in_episode >= self.max_episode_steps
        info: Dict[str, Any] = {
            "x_position": self.dynamics.torso_x,
            "forward_velocity": forward_velocity,
            "is_healthy": healthy,
        }
        return self.dynamics.observation(self.spec.obs_dim), reward, done, info


class Walker2DEnv(LocomotionEnv):
    """Walking bipedal humanoid (the simulator of Figures 4 and 5)."""

    sim_id = "Walker2D"
    spec = BodySpec(name="Walker2D", num_joints=6, obs_dim=17, healthy_z_range=(0.8, 2.0))


class HopperEnv(LocomotionEnv):
    """One-legged hopper."""

    sim_id = "Hopper"
    spec = BodySpec(name="Hopper", num_joints=3, obs_dim=11, healthy_z_range=(0.7, 2.0))


class HalfCheetahEnv(LocomotionEnv):
    """Planar cheetah; episodes never terminate early in Gym, so the healthy range is wide."""

    sim_id = "HalfCheetah"
    spec = BodySpec(name="HalfCheetah", num_joints=6, obs_dim=17, healthy_z_range=(-10.0, 10.0),
                    healthy_reward=0.0)


class AntEnv(LocomotionEnv):
    """Quadruped ant; the 111-dim observation includes contact-force padding."""

    sim_id = "Ant"
    spec = BodySpec(name="Ant", num_joints=8, obs_dim=111, healthy_z_range=(0.2, 1.0),
                    ctrl_cost_weight=0.5e-3)
