"""Simulator base class.

Every simulator follows the gym-style ``reset() / step(action)`` contract.
The *native* part of a step — what would be the Atari emulator, MuJoCo, or a
UE4 game engine in the real stack — runs inside a boundary scope that the
profiler's Python <-> C interception can observe, and advances the virtual
clock by the simulator's modelled step cost.  The thin Python glue around it
(action conversion, observation post-processing) costs interpreted-Python
time, as it does in real RL scripts.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Tuple

import numpy as np

from ..system import System
from .spaces import Box, Discrete, Space

StepResult = Tuple[np.ndarray, float, bool, Dict[str, Any]]


class Env:
    """Base simulator with cost accounting and an interception boundary."""

    #: Cost-model key of this simulator (see ``DEFAULT_SIM_STEP_US``).
    sim_id: str = "Pong"
    #: interpreted-Python units of glue work per step (action/observation marshalling)
    python_glue_units: float = 4.0

    observation_space: Space
    action_space: Space

    def __init__(self, system: System, *, seed: int = 0) -> None:
        self.system = system
        self.rng = np.random.default_rng(seed)
        self.boundary = None  #: profiler interception point (None when unprofiled)
        self.step_count = 0
        self.episode_count = 0
        self._done = True

    # ------------------------------------------------------------ native part
    @contextmanager
    def _native(self, call_name: str) -> Iterator[None]:
        """The Python -> simulator-C-library boundary."""
        if self.boundary is not None:
            self.boundary.enter(self, call_name)
        try:
            yield
        finally:
            if self.boundary is not None:
                self.boundary.exit(self, call_name)

    # ----------------------------------------------------------------- API
    def reset(self) -> np.ndarray:
        """Start a new episode and return the initial observation."""
        self.system.cpu_work(self.python_glue_units)
        with self._native("reset"):
            self.system.clock.advance(self.system.cost_model.sim_reset(self.sim_id))
            observation = self._reset_state()
        self._done = False
        self.episode_count += 1
        return np.asarray(observation, dtype=np.float32)

    def step(self, action) -> StepResult:
        """Advance the simulation by one step."""
        if self._done:
            raise RuntimeError("step() called on a finished episode; call reset() first")
        self.system.cpu_work(self.python_glue_units)
        action = self._prepare_action(action)
        with self._native("step"):
            self.system.clock.advance(self.system.cost_model.sim_step(self.sim_id))
            observation, reward, done, info = self._step_state(action)
        self.system.cpu_work(self.python_glue_units * 0.5)
        self.step_count += 1
        self._done = bool(done)
        return np.asarray(observation, dtype=np.float32), float(reward), bool(done), info

    def seed(self, seed: int) -> None:
        self.rng = np.random.default_rng(seed)

    # -------------------------------------------------------------- override
    def _prepare_action(self, action):
        """Validate/convert the incoming action (Python-side)."""
        if isinstance(self.action_space, Box):
            return self.action_space.clip(np.asarray(action, dtype=np.float32).reshape(self.action_space.shape))
        if isinstance(self.action_space, Discrete):
            action = int(np.asarray(action).reshape(()))
            if not self.action_space.contains(action):
                raise ValueError(f"action {action} outside Discrete({self.action_space.n})")
            return action
        return action

    def _reset_state(self) -> np.ndarray:
        raise NotImplementedError

    def _step_state(self, action) -> StepResult:
        raise NotImplementedError

    def state_key(self) -> Optional[int]:
        """Stable hash of the current native state, or ``None`` (the default).

        A non-``None`` key makes the env's policy evaluations cacheable in
        the service-side evaluation cache: two states with equal keys must
        produce bitwise-identical observations (and therefore identical
        network rows).  Envs whose state cannot be hashed cheaply — or
        whose observations embed continuous noise that never recurs —
        return ``None``, which bypasses the cache entirely.
        """
        return None

    # ------------------------------------------------------------------ misc
    @property
    def observation_dim(self) -> int:
        space = self.observation_space
        return space.size if isinstance(space, Box) else space.n

    @property
    def action_dim(self) -> int:
        space = self.action_space
        return space.size if isinstance(space, Box) else space.n

    @property
    def is_discrete(self) -> bool:
        return isinstance(self.action_space, Discrete)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(sim_id={self.sim_id!r})"
