"""Simulator registry: ``make("Walker2D", system)`` factory."""

from __future__ import annotations

from typing import Callable, Dict, List

from ..system import System
from .airlearning import AirLearningEnv
from .atari import PongEnv
from .base import Env
from .go import GoEnv
from .mujoco import AntEnv, HalfCheetahEnv, HopperEnv, Walker2DEnv

_REGISTRY: Dict[str, Callable[..., Env]] = {
    "Pong": PongEnv,
    "Walker2D": Walker2DEnv,
    "Hopper": HopperEnv,
    "HalfCheetah": HalfCheetahEnv,
    "Ant": AntEnv,
    "Go": GoEnv,
    "AirLearning": AirLearningEnv,
}

#: Simulator complexity classes from Figure 6 of the paper.
SIMULATOR_COMPLEXITY = {
    "Pong": "low",
    "Go": "low",
    "Hopper": "medium",
    "Walker2D": "medium",
    "HalfCheetah": "medium",
    "Ant": "medium",
    "AirLearning": "high",
}


def register(name: str, factory: Callable[..., Env]) -> None:
    """Register a custom simulator factory."""
    if name in _REGISTRY:
        raise ValueError(f"simulator {name!r} already registered")
    _REGISTRY[name] = factory


def available_simulators() -> List[str]:
    return sorted(_REGISTRY)


def make(name: str, system: System, *, seed: int = 0, **kwargs) -> Env:
    """Instantiate a simulator by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(f"unknown simulator {name!r}; available: {available_simulators()}") from exc
    return factory(system, seed=seed, **kwargs)
