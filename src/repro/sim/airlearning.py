"""AirLearning-style drone navigation with photo-realistic rendering cost.

The paper's high-complexity simulator (Appendix B.1) is the AirLearning UAV
point-to-point navigation task running on a UE4 game engine: each simulator
step is dominated by physics plus photo-realistic rendering, part of which
runs on the GPU.  The reproduction models a quad-rotor point-mass navigating
a 3-D obstacle field; every step pays the (very large) AirLearning CPU step
cost from the cost model and issues a frame-render kernel on the simulated
GPU, so simulation dominates training time (finding F.12, 99.6 % simulation).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from ..cuda.kernels import render_kernel
from ..system import System
from .base import Env, StepResult
from .spaces import Box, Discrete

#: Discrete action set: hover plus +/- unit accelerations along each axis.
ACTIONS = np.array(
    [
        [0.0, 0.0, 0.0],
        [1.0, 0.0, 0.0], [-1.0, 0.0, 0.0],
        [0.0, 1.0, 0.0], [0.0, -1.0, 0.0],
        [0.0, 0.0, 1.0], [0.0, 0.0, -1.0],
    ],
    dtype=np.float32,
)


class AirLearningEnv(Env):
    """Point-to-point UAV navigation through a random obstacle field."""

    sim_id = "AirLearning"
    python_glue_units = 6.0
    ARENA_SIZE = 20.0
    GOAL_RADIUS = 1.0
    NUM_OBSTACLES = 12
    OBSTACLE_RADIUS = 1.0
    MAX_STEPS = 400
    DT = 0.05
    RENDER_WIDTH = 640
    RENDER_HEIGHT = 480

    #: observation: position (3) + velocity (3) + goal vector (3) + 8 ray distances
    observation_space = Box(low=-1.0, high=1.0, shape=(17,))
    action_space = Discrete(len(ACTIONS))

    def __init__(self, system: System, *, seed: int = 0, render_on_gpu: bool = True) -> None:
        super().__init__(system, seed=seed)
        self.render_on_gpu = render_on_gpu
        self.position = np.zeros(3, dtype=np.float32)
        self.velocity = np.zeros(3, dtype=np.float32)
        self.goal = np.zeros(3, dtype=np.float32)
        self.obstacles: List[np.ndarray] = []
        self._steps_in_episode = 0

    # --------------------------------------------------------------- helpers
    def _ray_distances(self) -> np.ndarray:
        """Distances to the nearest obstacle along 8 horizontal rays (normalised)."""
        angles = np.linspace(0.0, 2.0 * np.pi, 8, endpoint=False)
        directions = np.stack([np.cos(angles), np.sin(angles), np.zeros(8)], axis=1)
        distances = np.full(8, 1.0, dtype=np.float32)
        max_range = self.ARENA_SIZE
        for i, direction in enumerate(directions):
            for obstacle in self.obstacles:
                to_obstacle = obstacle - self.position
                projection = float(np.dot(to_obstacle, direction))
                if projection <= 0:
                    continue
                lateral = np.linalg.norm(to_obstacle - projection * direction)
                if lateral <= self.OBSTACLE_RADIUS:
                    distances[i] = min(distances[i], projection / max_range)
        return distances

    def _observation(self) -> np.ndarray:
        scale = self.ARENA_SIZE
        return np.concatenate([
            self.position / scale,
            self.velocity / 5.0,
            (self.goal - self.position) / scale,
            self._ray_distances(),
        ]).astype(np.float32)

    def _render_frame(self) -> None:
        """Photo-realistic frame render: issued to the GPU by the game engine."""
        if self.render_on_gpu:
            self.system.cuda.launch_kernel(
                render_kernel(self.RENDER_WIDTH, self.RENDER_HEIGHT, samples=2)
            )

    # -------------------------------------------------------------- Env hooks
    def _reset_state(self) -> np.ndarray:
        half = self.ARENA_SIZE / 2
        self.position = self.rng.uniform(-half * 0.8, half * 0.8, size=3).astype(np.float32)
        self.position[2] = abs(self.position[2]) * 0.3 + 1.0
        self.velocity = np.zeros(3, dtype=np.float32)
        self.goal = self.rng.uniform(-half * 0.8, half * 0.8, size=3).astype(np.float32)
        self.goal[2] = abs(self.goal[2]) * 0.3 + 1.0
        self.obstacles = [
            self.rng.uniform(-half, half, size=3).astype(np.float32)
            for _ in range(self.NUM_OBSTACLES)
        ]
        self._steps_in_episode = 0
        self._render_frame()
        return self._observation()

    def _step_state(self, action: int) -> StepResult:
        self._steps_in_episode += 1
        previous_distance = float(np.linalg.norm(self.goal - self.position))

        acceleration = ACTIONS[int(action)] * 4.0
        self.velocity = np.clip(self.velocity + self.DT * acceleration - 0.05 * self.velocity, -5.0, 5.0)
        self.position = self.position + self.DT * self.velocity
        half = self.ARENA_SIZE / 2
        self.position = np.clip(self.position, [-half, -half, 0.2], [half, half, half])

        self._render_frame()

        distance = float(np.linalg.norm(self.goal - self.position))
        collided = any(
            np.linalg.norm(self.position - obstacle) < self.OBSTACLE_RADIUS
            for obstacle in self.obstacles
        )
        reached = distance < self.GOAL_RADIUS

        reward = (previous_distance - distance) - 0.01
        if reached:
            reward += 10.0
        if collided:
            reward -= 5.0

        done = reached or collided or self._steps_in_episode >= self.MAX_STEPS
        info: Dict[str, Any] = {"distance_to_goal": distance, "collided": collided, "reached": reached}
        return self._observation(), reward, done, info
