"""Lightweight articulated-locomotion dynamics used by the MuJoCo-style tasks.

The paper's medium-complexity simulators (Walker2D, Hopper, HalfCheetah, Ant)
are MuJoCo locomotion tasks: an articulated body pushes itself forward, the
reward is forward velocity minus a control penalty, and the episode ends if
the torso leaves a healthy height range.  The reproduction models the body as
a set of actuated joints with damped second-order dynamics coupled to a torso
whose forward speed depends on coordinated joint motion.  This is not a
contact solver, but it preserves what matters for the profiling study: a
CPU-side step of realistic cost, observations/actions of the right
dimensionality, rewards that policies can actually improve, and episodes that
terminate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class BodySpec:
    """Dimensions and dynamics constants of one locomotion body."""

    name: str
    num_joints: int
    obs_dim: int
    healthy_z_range: Tuple[float, float] = (0.4, 2.5)
    forward_reward_weight: float = 1.0
    ctrl_cost_weight: float = 1e-3
    healthy_reward: float = 1.0
    dt: float = 0.008
    joint_damping: float = 2.0
    joint_stiffness: float = 8.0
    gear: float = 6.0


class LocomotionDynamics:
    """Damped joint dynamics with a torso that moves forward when joints oscillate coherently."""

    def __init__(self, spec: BodySpec, rng: np.random.Generator) -> None:
        self.spec = spec
        self.rng = rng
        n = spec.num_joints
        # Fixed per-body coupling that maps joint velocities to forward thrust.
        self._thrust_weights = rng.normal(0.0, 1.0, size=n).astype(np.float64)
        self._thrust_weights /= np.linalg.norm(self._thrust_weights) + 1e-8
        self.reset()

    # ------------------------------------------------------------------ state
    def reset(self) -> None:
        n = self.spec.num_joints
        self.qpos = self.rng.uniform(-0.1, 0.1, size=n)
        self.qvel = self.rng.uniform(-0.05, 0.05, size=n)
        self.torso_z = 1.25 + self.rng.uniform(-0.05, 0.05)
        self.torso_x = 0.0
        self.torso_vx = 0.0
        self.torso_vz = 0.0

    def step(self, action: np.ndarray) -> Tuple[float, float]:
        """Advance one control step; returns (forward velocity, control cost)."""
        spec = self.spec
        action = np.clip(np.asarray(action, dtype=np.float64).reshape(spec.num_joints), -1.0, 1.0)
        # Joint dynamics: torque-driven, damped springs.
        torque = spec.gear * action
        qacc = torque - spec.joint_damping * self.qvel - spec.joint_stiffness * self.qpos
        self.qvel = self.qvel + spec.dt * qacc
        self.qpos = self.qpos + spec.dt * self.qvel

        # Forward thrust from coordinated joint motion; drag limits top speed.
        thrust = float(np.dot(self._thrust_weights, self.qvel))
        self.torso_vx += spec.dt * (2.0 * thrust - 0.8 * self.torso_vx)
        self.torso_x += spec.dt * self.torso_vx

        # Vertical wobble: large joint excursions destabilise the torso.
        instability = float(np.mean(np.abs(self.qpos))) - 0.6
        self.torso_vz += spec.dt * (-3.0 * instability - 0.5 * self.torso_vz
                                    + 0.2 * self.rng.normal())
        self.torso_z += spec.dt * self.torso_vz

        ctrl_cost = spec.ctrl_cost_weight * float(np.sum(np.square(action)))
        return self.torso_vx, ctrl_cost

    # ------------------------------------------------------------- accessors
    @property
    def is_healthy(self) -> bool:
        low, high = self.spec.healthy_z_range
        return bool(low <= self.torso_z <= high and np.all(np.isfinite(self.qpos)))

    def observation(self, obs_dim: int) -> np.ndarray:
        """Observation vector padded/truncated to ``obs_dim`` (Ant pads with contact-like zeros)."""
        core = np.concatenate([
            [self.torso_z, self.torso_vx, self.torso_vz],
            self.qpos,
            self.qvel,
        ])
        if core.size >= obs_dim:
            return core[:obs_dim].astype(np.float32)
        padded = np.zeros(obs_dim, dtype=np.float32)
        padded[: core.size] = core
        return padded
