"""Reference (pre-optimization) Go engine, kept verbatim as a test oracle.

This module preserves the original flood-fill :class:`ReferenceGoBoard` and
the uncached :class:`ReferenceGoPosition` exactly as they shipped before the
incremental-group rewrite of :mod:`repro.sim.go`.  They are deliberately
slow — every ``is_legal`` copies the board and flood-fills groups with Python
sets, every ``legal_moves`` re-scans the whole board, and ``features()``
rebuilds its planes from scratch — which makes them useful twice over:

* the seeded random-game oracle tests (``tests/test_go_oracle.py``) play
  hundreds of full games on the reference and optimized boards side by side
  and require identical legal-move sets, captures, ko verdicts and scores;
* the wall-clock benchmark (``benchmarks/test_bench_wallclock.py``) runs the
  whole self-play pool on this engine to pin the *pre-optimization* baseline
  the ≥3x end-to-end speedup is measured against.

Do not "fix" or optimize anything here: its value is being the unchanged
original.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set, Tuple

import numpy as np

EMPTY = 0
BLACK = 1
WHITE = -1

Move = Optional[Tuple[int, int]]  #: board coordinate, or None for "pass"


def opponent(color: int) -> int:
    return -color


class ReferenceGoBoard:
    """Board state plus the rules of play (original flood-fill implementation)."""

    def __init__(self, size: int = 9, komi: float = 6.5) -> None:
        if size < 3:
            raise ValueError("board size must be at least 3")
        self.size = size
        self.komi = komi
        self.board = np.zeros((size, size), dtype=np.int8)
        self.ko_point: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------ utils
    def copy(self) -> "ReferenceGoBoard":
        new = ReferenceGoBoard(self.size, self.komi)
        new.board = self.board.copy()
        new.ko_point = self.ko_point
        return new

    def in_bounds(self, row: int, col: int) -> bool:
        return 0 <= row < self.size and 0 <= col < self.size

    def neighbors(self, row: int, col: int) -> Iterable[Tuple[int, int]]:
        for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            r, c = row + dr, col + dc
            if self.in_bounds(r, c):
                yield r, c

    def group_and_liberties(self, row: int, col: int) -> Tuple[Set[Tuple[int, int]], Set[Tuple[int, int]]]:
        """Connected group containing (row, col) and its liberties."""
        color = self.board[row, col]
        if color == EMPTY:
            raise ValueError("no stone at the given point")
        group: Set[Tuple[int, int]] = set()
        liberties: Set[Tuple[int, int]] = set()
        frontier = [(row, col)]
        while frontier:
            point = frontier.pop()
            if point in group:
                continue
            group.add(point)
            for neighbor in self.neighbors(*point):
                value = self.board[neighbor]
                if value == EMPTY:
                    liberties.add(neighbor)
                elif value == color and neighbor not in group:
                    frontier.append(neighbor)
        return group, liberties

    # ------------------------------------------------------------------ rules
    def is_legal(self, move: Move, color: int) -> bool:
        if move is None:
            return True
        row, col = move
        if not self.in_bounds(row, col) or self.board[row, col] != EMPTY:
            return False
        if self.ko_point == (row, col):
            return False
        # Tentatively play to check for suicide.
        scratch = self.copy()
        scratch.ko_point = None
        captured = scratch._place(row, col, color)
        if captured:
            return True
        _, liberties = scratch.group_and_liberties(row, col)
        return len(liberties) > 0

    def _place(self, row: int, col: int, color: int) -> List[Tuple[int, int]]:
        """Place a stone and remove captured opponent groups; returns captures."""
        self.board[row, col] = color
        captured: List[Tuple[int, int]] = []
        for neighbor in self.neighbors(row, col):
            if self.board[neighbor] == opponent(color):
                group, liberties = self.group_and_liberties(*neighbor)
                if not liberties:
                    for point in group:
                        self.board[point] = EMPTY
                        captured.append(point)
        return captured

    def play(self, move: Move, color: int) -> List[Tuple[int, int]]:
        """Apply a legal move; returns the list of captured points."""
        if not self.is_legal(move, color):
            raise ValueError(f"illegal move {move} for color {color}")
        self.ko_point = None
        if move is None:
            return []
        row, col = move
        captured = self._place(row, col, color)
        # Simple ko: a single-stone capture that leaves the new stone with a
        # single liberty at the captured point forbids immediate recapture.
        if len(captured) == 1:
            group, liberties = self.group_and_liberties(row, col)
            if len(group) == 1 and len(liberties) == 1:
                self.ko_point = captured[0]
        return captured

    def legal_moves(self, color: int, *, include_pass: bool = True) -> List[Move]:
        moves: List[Move] = [
            (row, col)
            for row in range(self.size)
            for col in range(self.size)
            if self.board[row, col] == EMPTY and self.is_legal((row, col), color)
        ]
        if include_pass:
            moves.append(None)
        return moves

    # ---------------------------------------------------------------- scoring
    def area_score(self) -> float:
        """Area score from Black's perspective (stones + territory - komi)."""
        black = float(np.sum(self.board == BLACK))
        white = float(np.sum(self.board == WHITE))
        territory_black, territory_white = self._territory()
        return (black + territory_black) - (white + territory_white) - self.komi

    def _territory(self) -> Tuple[float, float]:
        visited: Set[Tuple[int, int]] = set()
        black_territory = 0.0
        white_territory = 0.0
        for row in range(self.size):
            for col in range(self.size):
                if self.board[row, col] != EMPTY or (row, col) in visited:
                    continue
                region: Set[Tuple[int, int]] = set()
                borders: Set[int] = set()
                frontier = [(row, col)]
                while frontier:
                    point = frontier.pop()
                    if point in region:
                        continue
                    region.add(point)
                    for neighbor in self.neighbors(*point):
                        value = self.board[neighbor]
                        if value == EMPTY:
                            if neighbor not in region:
                                frontier.append(neighbor)
                        else:
                            borders.add(int(value))
                visited |= region
                if borders == {BLACK}:
                    black_territory += len(region)
                elif borders == {WHITE}:
                    white_territory += len(region)
        return black_territory, white_territory


@dataclass
class ReferenceGoPosition:
    """Original game position: no caching, every call recomputes from scratch."""

    board: ReferenceGoBoard
    to_play: int = BLACK
    consecutive_passes: int = 0
    move_count: int = 0

    @classmethod
    def initial(cls, size: int = 9, komi: float = 6.5) -> "ReferenceGoPosition":
        return cls(board=ReferenceGoBoard(size, komi))

    @property
    def size(self) -> int:
        return self.board.size

    def legal_moves(self) -> List[Move]:
        return self.board.legal_moves(self.to_play)

    def play(self, move: Move) -> "ReferenceGoPosition":
        """Return the successor position after the current player plays ``move``."""
        board = self.board.copy()
        board.play(move, self.to_play)
        passes = self.consecutive_passes + 1 if move is None else 0
        return ReferenceGoPosition(
            board=board,
            to_play=opponent(self.to_play),
            consecutive_passes=passes,
            move_count=self.move_count + 1,
        )

    @property
    def is_over(self) -> bool:
        return self.consecutive_passes >= 2 or self.move_count >= 2 * self.size * self.size

    def result(self) -> float:
        """+1 if Black wins, -1 if White wins (0 is impossible with fractional komi)."""
        score = self.board.area_score()
        return 1.0 if score > 0 else -1.0

    def features(self) -> np.ndarray:
        """Flat feature vector for the policy/value network."""
        own = (self.board.board == self.to_play).astype(np.float32)
        other = (self.board.board == opponent(self.to_play)).astype(np.float32)
        turn = np.full((self.size, self.size), 1.0 if self.to_play == BLACK else 0.0, dtype=np.float32)
        return np.concatenate([own.reshape(-1), other.reshape(-1), turn.reshape(-1)])

    def move_to_index(self, move: Move) -> int:
        if move is None:
            return self.size * self.size
        return move[0] * self.size + move[1]

    def index_to_move(self, index: int) -> Move:
        if index == self.size * self.size:
            return None
        return divmod(index, self.size)
