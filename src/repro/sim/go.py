"""The game of Go: board rules, a position class for MCTS, and a gym-style env.

Minigo (the scale-up workload of Section 4.3) trains a policy/value network
through MCTS self-play on Go.  This module implements the game itself: stone
placement, capture, the suicide rule, simple-ko, passing, and area scoring
with komi, on a configurable board size (9x9 by default to keep the
reproduction fast).

The board keeps **incrementally-maintained group and liberty maps**: every
occupied point maps to an immutable group record (color, stones, liberties)
that is updated in place as stones are played and captures cascade, plus an
incrementally-maintained Zobrist hash of the stone configuration.  Legality
is therefore an O(neighbors) lookup instead of the flood-fill-per-candidate
scan of the original implementation (preserved verbatim as
:mod:`repro.sim.go_reference` and pinned equivalent by the random-game oracle
in ``tests/test_go_oracle.py``).  :class:`GoPosition` is immutable, so its
``legal_moves()``/``features()`` are computed once and cached per instance —
MCTS expansion and self-play record collection hit the cache instead of
re-deriving them per call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..system import System
from .base import Env, StepResult
from .spaces import Box, Discrete

EMPTY = 0
BLACK = 1
WHITE = -1

Move = Optional[Tuple[int, int]]  #: board coordinate, or None for "pass"


def opponent(color: int) -> int:
    return -color


# ------------------------------------------------------------- board geometry
#: Per-size caches shared by every board instance: the row-major point list,
#: the point -> neighbor-tuple map, and the Zobrist key tables.  Boards of
#: the same size share these read-only structures, so copying a board never
#: copies them.
_POINTS_CACHE: Dict[int, Tuple[Tuple[int, int], ...]] = {}
_NEIGHBORS_CACHE: Dict[int, Dict[Tuple[int, int], Tuple[Tuple[int, int], ...]]] = {}
_ZOBRIST_CACHE: Dict[int, Tuple[List[List[int]], List[int], int]] = {}

#: Seed of the Zobrist key stream.  Fixed forever: hashes are persisted in
#: nothing, but tests pin incremental == from-scratch recomputation.
_ZOBRIST_SEED = 0x60B0A12D


def _points(size: int) -> Tuple[Tuple[int, int], ...]:
    points = _POINTS_CACHE.get(size)
    if points is None:
        points = tuple((row, col) for row in range(size) for col in range(size))
        _POINTS_CACHE[size] = points
    return points


def _neighbor_map(size: int) -> Dict[Tuple[int, int], Tuple[Tuple[int, int], ...]]:
    neighbors = _NEIGHBORS_CACHE.get(size)
    if neighbors is None:
        neighbors = {
            (row, col): tuple(
                (row + dr, col + dc)
                for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1))
                if 0 <= row + dr < size and 0 <= col + dc < size
            )
            for row, col in _points(size)
        }
        _NEIGHBORS_CACHE[size] = neighbors
    return neighbors


def _zobrist_tables(size: int) -> Tuple[List[List[int]], List[int], int]:
    """(stone_keys[point][channel], ko_keys[point], turn_key) for one size.

    ``channel`` 0 is Black, 1 is White.  Keys are plain Python ints so the
    incremental XOR stays exact arbitrary-precision arithmetic.
    """
    tables = _ZOBRIST_CACHE.get(size)
    if tables is None:
        rng = np.random.default_rng(_ZOBRIST_SEED + size)
        raw = rng.integers(1, 2 ** 63, size=(size * size, 3), dtype=np.int64)
        stone_keys = [[int(raw[p, 0]), int(raw[p, 1])] for p in range(size * size)]
        ko_keys = [int(raw[p, 2]) for p in range(size * size)]
        turn_key = int(rng.integers(1, 2 ** 63, dtype=np.int64))
        tables = (stone_keys, ko_keys, turn_key)
        _ZOBRIST_CACHE[size] = tables
    return tables


class _Group:
    """One connected group of stones with its liberties — immutable.

    Immutability is what makes :meth:`GoBoard.copy` cheap: a copied board
    shallow-copies the point -> group map and shares every group record with
    the original; any later mutation replaces records instead of editing
    them.
    """

    __slots__ = ("color", "stones", "liberties")

    def __init__(self, color: int, stones: frozenset, liberties: frozenset) -> None:
        self.color = color
        self.stones = stones
        self.liberties = liberties


class GoBoard:
    """Board state plus the rules of play, with incremental bookkeeping.

    Public surface (``board`` array, ``ko_point``, ``copy``, ``is_legal``,
    ``play``, ``legal_moves``, ``group_and_liberties``, ``area_score``) is
    identical to the reference implementation; the random-game oracle test
    pins the two move-for-move.  Additionally :attr:`zobrist` exposes the
    incrementally-maintained hash of the stone configuration.
    """

    def __init__(self, size: int = 9, komi: float = 6.5) -> None:
        if size < 3:
            raise ValueError("board size must be at least 3")
        self.size = size
        self.komi = komi
        self.board = np.zeros((size, size), dtype=np.int8)
        self.ko_point: Optional[Tuple[int, int]] = None
        #: point -> _Group for every occupied point (empty points are absent).
        self._group_at: Dict[Tuple[int, int], _Group] = {}
        self._neighbors = _neighbor_map(size)
        self._points = _points(size)
        self._stone_keys, self._ko_keys, self._turn_key = _zobrist_tables(size)
        self.zobrist = 0  #: incremental Zobrist hash of the stone layout

    # ------------------------------------------------------------------ utils
    def copy(self) -> "GoBoard":
        new = GoBoard.__new__(GoBoard)
        new.size = self.size
        new.komi = self.komi
        new.board = self.board.copy()
        new.ko_point = self.ko_point
        new._group_at = dict(self._group_at)
        new._neighbors = self._neighbors
        new._points = self._points
        new._stone_keys = self._stone_keys
        new._ko_keys = self._ko_keys
        new._turn_key = self._turn_key
        new.zobrist = self.zobrist
        return new

    def in_bounds(self, row: int, col: int) -> bool:
        return 0 <= row < self.size and 0 <= col < self.size

    def neighbors(self, row: int, col: int) -> Iterable[Tuple[int, int]]:
        return self._neighbors[(row, col)]

    def group_and_liberties(self, row: int, col: int) -> Tuple[Set[Tuple[int, int]], Set[Tuple[int, int]]]:
        """Connected group containing (row, col) and its liberties."""
        group = self._group_at.get((row, col))
        if group is None:
            raise ValueError("no stone at the given point")
        return set(group.stones), set(group.liberties)

    def position_key(self, to_play: int, ko_point: Optional[Tuple[int, int]] = None) -> int:
        """Transposition key: stones ^ ko point ^ side to move.

        Built from the incremental :attr:`zobrist` stone hash, so it is O(1)
        per query — the hook for transposition tables / positional-superko
        follow-ons without changing the simple-ko rule the records pin.
        """
        key = self.zobrist
        ko = ko_point if ko_point is not None else self.ko_point
        if ko is not None:
            key ^= self._ko_keys[ko[0] * self.size + ko[1]]
        if to_play == WHITE:
            key ^= self._turn_key
        return key

    def zobrist_from_scratch(self) -> int:
        """Recompute the stone hash from the raw array (test oracle)."""
        key = 0
        for row, col in self._points:
            value = self.board[row, col]
            if value == BLACK:
                key ^= self._stone_keys[row * self.size + col][0]
            elif value == WHITE:
                key ^= self._stone_keys[row * self.size + col][1]
        return key

    # ------------------------------------------------------------------ rules
    def is_legal(self, move: Move, color: int) -> bool:
        if move is None:
            return True
        row, col = move
        if not (0 <= row < self.size and 0 <= col < self.size):
            return False
        point = (row, col)
        if point in self._group_at:  # occupied (board and map move in lockstep)
            return False
        if self.ko_point == point:
            return False
        return self._legal_at_empty(point, color)

    def _legal_at_empty(self, point: Tuple[int, int], color: int) -> bool:
        """Legality of playing ``color`` on a known-empty, non-ko point.

        O(neighbors): the move is legal iff the point has an empty neighbor,
        or joins a friendly group that keeps another liberty, or captures an
        adjacent opponent group whose last liberty is this point.
        """
        group_at = self._group_at
        neighbor_groups = []
        for neighbor in self._neighbors[point]:
            group = group_at.get(neighbor)
            if group is None:
                return True  # an empty neighbor is a liberty of the new stone
            neighbor_groups.append(group)
        for group in neighbor_groups:
            if group.color == color:
                # point is one of the group's liberties; any other survives.
                if len(group.liberties) > 1:
                    return True
            elif len(group.liberties) == 1:
                # The opponent group's only liberty is this point: captured.
                return True
        return False

    def _place(self, row: int, col: int, color: int) -> List[Tuple[int, int]]:
        """Place a stone and remove captured opponent groups; returns captures."""
        point = (row, col)
        group_at = self._group_at
        stone_keys = self._stone_keys
        size = self.size
        self.board[point] = color
        self.zobrist ^= stone_keys[row * size + col][0 if color == BLACK else 1]

        merged: List[_Group] = []
        enemies: List[_Group] = []
        own_liberties: Set[Tuple[int, int]] = set()
        for neighbor in self._neighbors[point]:
            group = group_at.get(neighbor)
            if group is None:
                own_liberties.add(neighbor)
            elif group.color == color:
                if not any(group is seen for seen in merged):
                    merged.append(group)
            elif not any(group is seen for seen in enemies):
                enemies.append(group)

        own_stones: Set[Tuple[int, int]] = {point}
        for group in merged:
            own_stones |= group.stones
            own_liberties |= group.liberties
        own_liberties.discard(point)

        captured: List[Tuple[int, int]] = []
        for group in enemies:
            if len(group.liberties) == 1:  # its only liberty was this point
                channel = 0 if group.color == BLACK else 1
                for prisoner in group.stones:
                    self.board[prisoner] = EMPTY
                    del group_at[prisoner]
                    self.zobrist ^= stone_keys[prisoner[0] * size + prisoner[1]][channel]
                    captured.append(prisoner)
            else:
                survivor = _Group(group.color, group.stones, group.liberties - {point})
                for stone in group.stones:
                    group_at[stone] = survivor

        if captured:
            # Each captured point becomes a liberty of every adjacent group
            # that survives.  Adjacent stones are necessarily the placing
            # color (two touching stones of one color share a group, so no
            # *other* opponent group can touch the captured one): either the
            # new merged group, or a friendly group elsewhere on the board.
            gained: Dict[int, Tuple[_Group, Set[Tuple[int, int]]]] = {}
            merged_ids = {id(group) for group in merged}
            for prisoner in captured:
                for neighbor in self._neighbors[prisoner]:
                    if neighbor in own_stones:
                        own_liberties.add(prisoner)
                        continue
                    group = group_at.get(neighbor)
                    if group is not None and id(group) not in merged_ids:
                        entry = gained.get(id(group))
                        if entry is None:
                            gained[id(group)] = (group, {prisoner})
                        else:
                            entry[1].add(prisoner)
            for group, liberties in gained.values():
                enriched = _Group(group.color, group.stones, group.liberties | liberties)
                for stone in group.stones:
                    group_at[stone] = enriched

        new_group = _Group(color, frozenset(own_stones), frozenset(own_liberties))
        for stone in own_stones:
            group_at[stone] = new_group
        return captured

    def play(self, move: Move, color: int) -> List[Tuple[int, int]]:
        """Apply a legal move; returns the list of captured points."""
        if not self.is_legal(move, color):
            raise ValueError(f"illegal move {move} for color {color}")
        self.ko_point = None
        if move is None:
            return []
        row, col = move
        captured = self._place(row, col, color)
        # Simple ko: a single-stone capture that leaves the new stone with a
        # single liberty at the captured point forbids immediate recapture.
        if len(captured) == 1:
            group = self._group_at[(row, col)]
            if len(group.stones) == 1 and len(group.liberties) == 1:
                self.ko_point = captured[0]
        return captured

    def legal_moves(self, color: int, *, include_pass: bool = True) -> List[Move]:
        group_at = self._group_at
        ko_point = self.ko_point
        legal_at_empty = self._legal_at_empty
        moves: List[Move] = [
            point for point in self._points
            if point not in group_at and point != ko_point
            and legal_at_empty(point, color)
        ]
        if include_pass:
            moves.append(None)
        return moves

    # ---------------------------------------------------------------- scoring
    def area_score(self) -> float:
        """Area score from Black's perspective (stones + territory - komi)."""
        black = float(np.sum(self.board == BLACK))
        white = float(np.sum(self.board == WHITE))
        territory_black, territory_white = self._territory()
        return (black + territory_black) - (white + territory_white) - self.komi

    def _territory(self) -> Tuple[float, float]:
        visited: Set[Tuple[int, int]] = set()
        black_territory = 0.0
        white_territory = 0.0
        for row in range(self.size):
            for col in range(self.size):
                if self.board[row, col] != EMPTY or (row, col) in visited:
                    continue
                region: Set[Tuple[int, int]] = set()
                borders: Set[int] = set()
                frontier = [(row, col)]
                while frontier:
                    point = frontier.pop()
                    if point in region:
                        continue
                    region.add(point)
                    for neighbor in self.neighbors(*point):
                        value = self.board[neighbor]
                        if value == EMPTY:
                            if neighbor not in region:
                                frontier.append(neighbor)
                        else:
                            borders.add(int(value))
                visited |= region
                if borders == {BLACK}:
                    black_territory += len(region)
                elif borders == {WHITE}:
                    white_territory += len(region)
        return black_territory, white_territory


@dataclass
class GoPosition:
    """Immutable game position for tree search: board + whose turn + pass count.

    Positions never change after construction, so the expensive derived
    quantities — the legal-move list and the network feature planes — are
    computed once and cached on the instance.  Callers treat the returned
    list/array as read-only.
    """

    board: GoBoard
    to_play: int = BLACK
    consecutive_passes: int = 0
    move_count: int = 0

    def __post_init__(self) -> None:
        self._size = self.board.size
        self._pass_index = self._size * self._size
        self._legal_moves: Optional[List[Move]] = None
        self._features: Optional[np.ndarray] = None

    @classmethod
    def initial(cls, size: int = 9, komi: float = 6.5) -> "GoPosition":
        return cls(board=GoBoard(size, komi))

    @property
    def size(self) -> int:
        return self._size

    def legal_moves(self) -> List[Move]:
        moves = self._legal_moves
        if moves is None:
            moves = self.board.legal_moves(self.to_play)
            self._legal_moves = moves
        return moves

    def play(self, move: Move) -> "GoPosition":
        """Return the successor position after the current player plays ``move``."""
        board = self.board.copy()
        board.play(move, self.to_play)
        passes = self.consecutive_passes + 1 if move is None else 0
        return GoPosition(
            board=board,
            to_play=opponent(self.to_play),
            consecutive_passes=passes,
            move_count=self.move_count + 1,
        )

    @property
    def is_over(self) -> bool:
        return self.consecutive_passes >= 2 or self.move_count >= 2 * self._pass_index

    def result(self) -> float:
        """+1 if Black wins, -1 if White wins (0 is impossible with fractional komi)."""
        score = self.board.area_score()
        return 1.0 if score > 0 else -1.0

    def features(self) -> np.ndarray:
        """Flat feature vector for the policy/value network (cached)."""
        features = self._features
        if features is None:
            own = (self.board.board == self.to_play).astype(np.float32)
            other = (self.board.board == opponent(self.to_play)).astype(np.float32)
            turn = np.full((self._size, self._size),
                           1.0 if self.to_play == BLACK else 0.0, dtype=np.float32)
            features = np.concatenate([own.reshape(-1), other.reshape(-1), turn.reshape(-1)])
            self._features = features
        return features

    def transposition_key(self) -> int:
        """Zobrist key of (stones, ko point, side to move) — O(1) per call."""
        return self.board.position_key(self.to_play)

    def move_to_index(self, move: Move) -> int:
        if move is None:
            return self._pass_index
        return move[0] * self._size + move[1]

    def index_to_move(self, index: int) -> Move:
        if index == self._pass_index:
            return None
        return divmod(index, self._size)


class GoEnv(Env):
    """Gym-style Go against a uniformly random opponent (plays White)."""

    sim_id = "Go"

    def __init__(self, system: System, *, seed: int = 0, size: int = 9, komi: float = 6.5) -> None:
        super().__init__(system, seed=seed)
        self.size = size
        self.komi = komi
        self.observation_space = Box(low=0.0, high=1.0, shape=(3 * size * size,))
        self.action_space = Discrete(size * size + 1)
        self.position = GoPosition.initial(size, komi)

    def _reset_state(self) -> np.ndarray:
        self.position = GoPosition.initial(self.size, self.komi)
        return self.position.features()

    def state_key(self) -> Optional[int]:
        """The position's incremental Zobrist key (stones + ko + side to move)."""
        return self.position.transposition_key()

    def _step_state(self, action: int) -> StepResult:
        move = self.position.index_to_move(int(action))
        if not self.position.board.is_legal(move, self.position.to_play):
            # Illegal moves are converted to a pass with a small penalty; this
            # keeps random policies from dead-locking the environment.
            move = None
            penalty = -0.1
        else:
            penalty = 0.0
        self.position = self.position.play(move)

        if not self.position.is_over:
            # Random opponent reply.
            moves = self.position.legal_moves()
            reply = moves[self.rng.integers(0, len(moves))]
            self.position = self.position.play(reply)

        done = self.position.is_over
        reward = penalty
        if done:
            reward += self.position.board.area_score() > 0 and 1.0 or -1.0
        info: Dict[str, Any] = {"move_count": self.position.move_count}
        return self.position.features(), reward, done, info
