"""The game of Go: board rules, a position class for MCTS, and a gym-style env.

Minigo (the scale-up workload of Section 4.3) trains a policy/value network
through MCTS self-play on Go.  This module implements the game itself: stone
placement, capture, the suicide rule, simple-ko, passing, and area scoring
with komi, on a configurable board size (9x9 by default to keep the
reproduction fast).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..system import System
from .base import Env, StepResult
from .spaces import Box, Discrete

EMPTY = 0
BLACK = 1
WHITE = -1

Move = Optional[Tuple[int, int]]  #: board coordinate, or None for "pass"


def opponent(color: int) -> int:
    return -color


class GoBoard:
    """Board state plus the rules of play."""

    def __init__(self, size: int = 9, komi: float = 6.5) -> None:
        if size < 3:
            raise ValueError("board size must be at least 3")
        self.size = size
        self.komi = komi
        self.board = np.zeros((size, size), dtype=np.int8)
        self.ko_point: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------ utils
    def copy(self) -> "GoBoard":
        new = GoBoard(self.size, self.komi)
        new.board = self.board.copy()
        new.ko_point = self.ko_point
        return new

    def in_bounds(self, row: int, col: int) -> bool:
        return 0 <= row < self.size and 0 <= col < self.size

    def neighbors(self, row: int, col: int) -> Iterable[Tuple[int, int]]:
        for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            r, c = row + dr, col + dc
            if self.in_bounds(r, c):
                yield r, c

    def group_and_liberties(self, row: int, col: int) -> Tuple[Set[Tuple[int, int]], Set[Tuple[int, int]]]:
        """Connected group containing (row, col) and its liberties."""
        color = self.board[row, col]
        if color == EMPTY:
            raise ValueError("no stone at the given point")
        group: Set[Tuple[int, int]] = set()
        liberties: Set[Tuple[int, int]] = set()
        frontier = [(row, col)]
        while frontier:
            point = frontier.pop()
            if point in group:
                continue
            group.add(point)
            for neighbor in self.neighbors(*point):
                value = self.board[neighbor]
                if value == EMPTY:
                    liberties.add(neighbor)
                elif value == color and neighbor not in group:
                    frontier.append(neighbor)
        return group, liberties

    # ------------------------------------------------------------------ rules
    def is_legal(self, move: Move, color: int) -> bool:
        if move is None:
            return True
        row, col = move
        if not self.in_bounds(row, col) or self.board[row, col] != EMPTY:
            return False
        if self.ko_point == (row, col):
            return False
        # Tentatively play to check for suicide.
        scratch = self.copy()
        scratch.ko_point = None
        captured = scratch._place(row, col, color)
        if captured:
            return True
        _, liberties = scratch.group_and_liberties(row, col)
        return len(liberties) > 0

    def _place(self, row: int, col: int, color: int) -> List[Tuple[int, int]]:
        """Place a stone and remove captured opponent groups; returns captures."""
        self.board[row, col] = color
        captured: List[Tuple[int, int]] = []
        for neighbor in self.neighbors(row, col):
            if self.board[neighbor] == opponent(color):
                group, liberties = self.group_and_liberties(*neighbor)
                if not liberties:
                    for point in group:
                        self.board[point] = EMPTY
                        captured.append(point)
        return captured

    def play(self, move: Move, color: int) -> List[Tuple[int, int]]:
        """Apply a legal move; returns the list of captured points."""
        if not self.is_legal(move, color):
            raise ValueError(f"illegal move {move} for color {color}")
        self.ko_point = None
        if move is None:
            return []
        row, col = move
        captured = self._place(row, col, color)
        # Simple ko: a single-stone capture that leaves the new stone with a
        # single liberty at the captured point forbids immediate recapture.
        if len(captured) == 1:
            group, liberties = self.group_and_liberties(row, col)
            if len(group) == 1 and len(liberties) == 1:
                self.ko_point = captured[0]
        return captured

    def legal_moves(self, color: int, *, include_pass: bool = True) -> List[Move]:
        moves: List[Move] = [
            (row, col)
            for row in range(self.size)
            for col in range(self.size)
            if self.board[row, col] == EMPTY and self.is_legal((row, col), color)
        ]
        if include_pass:
            moves.append(None)
        return moves

    # ---------------------------------------------------------------- scoring
    def area_score(self) -> float:
        """Area score from Black's perspective (stones + territory - komi)."""
        black = float(np.sum(self.board == BLACK))
        white = float(np.sum(self.board == WHITE))
        territory_black, territory_white = self._territory()
        return (black + territory_black) - (white + territory_white) - self.komi

    def _territory(self) -> Tuple[float, float]:
        visited: Set[Tuple[int, int]] = set()
        black_territory = 0.0
        white_territory = 0.0
        for row in range(self.size):
            for col in range(self.size):
                if self.board[row, col] != EMPTY or (row, col) in visited:
                    continue
                region: Set[Tuple[int, int]] = set()
                borders: Set[int] = set()
                frontier = [(row, col)]
                while frontier:
                    point = frontier.pop()
                    if point in region:
                        continue
                    region.add(point)
                    for neighbor in self.neighbors(*point):
                        value = self.board[neighbor]
                        if value == EMPTY:
                            if neighbor not in region:
                                frontier.append(neighbor)
                        else:
                            borders.add(int(value))
                visited |= region
                if borders == {BLACK}:
                    black_territory += len(region)
                elif borders == {WHITE}:
                    white_territory += len(region)
        return black_territory, white_territory


@dataclass
class GoPosition:
    """Immutable-ish game position for tree search: board + whose turn + pass count."""

    board: GoBoard
    to_play: int = BLACK
    consecutive_passes: int = 0
    move_count: int = 0

    @classmethod
    def initial(cls, size: int = 9, komi: float = 6.5) -> "GoPosition":
        return cls(board=GoBoard(size, komi))

    @property
    def size(self) -> int:
        return self.board.size

    def legal_moves(self) -> List[Move]:
        return self.board.legal_moves(self.to_play)

    def play(self, move: Move) -> "GoPosition":
        """Return the successor position after the current player plays ``move``."""
        board = self.board.copy()
        board.play(move, self.to_play)
        passes = self.consecutive_passes + 1 if move is None else 0
        return GoPosition(
            board=board,
            to_play=opponent(self.to_play),
            consecutive_passes=passes,
            move_count=self.move_count + 1,
        )

    @property
    def is_over(self) -> bool:
        return self.consecutive_passes >= 2 or self.move_count >= 2 * self.size * self.size

    def result(self) -> float:
        """+1 if Black wins, -1 if White wins (0 is impossible with fractional komi)."""
        score = self.board.area_score()
        return 1.0 if score > 0 else -1.0

    def features(self) -> np.ndarray:
        """Flat feature vector for the policy/value network."""
        own = (self.board.board == self.to_play).astype(np.float32)
        other = (self.board.board == opponent(self.to_play)).astype(np.float32)
        turn = np.full((self.size, self.size), 1.0 if self.to_play == BLACK else 0.0, dtype=np.float32)
        return np.concatenate([own.reshape(-1), other.reshape(-1), turn.reshape(-1)])

    def move_to_index(self, move: Move) -> int:
        if move is None:
            return self.size * self.size
        return move[0] * self.size + move[1]

    def index_to_move(self, index: int) -> Move:
        if index == self.size * self.size:
            return None
        return divmod(index, self.size)


class GoEnv(Env):
    """Gym-style Go against a uniformly random opponent (plays White)."""

    sim_id = "Go"

    def __init__(self, system: System, *, seed: int = 0, size: int = 9, komi: float = 6.5) -> None:
        super().__init__(system, seed=seed)
        self.size = size
        self.komi = komi
        self.observation_space = Box(low=0.0, high=1.0, shape=(3 * size * size,))
        self.action_space = Discrete(size * size + 1)
        self.position = GoPosition.initial(size, komi)

    def _reset_state(self) -> np.ndarray:
        self.position = GoPosition.initial(self.size, self.komi)
        return self.position.features()

    def _step_state(self, action: int) -> StepResult:
        move = self.position.index_to_move(int(action))
        if not self.position.board.is_legal(move, self.position.to_play):
            # Illegal moves are converted to a pass with a small penalty; this
            # keeps random policies from dead-locking the environment.
            move = None
            penalty = -0.1
        else:
            penalty = 0.0
        self.position = self.position.play(move)

        if not self.position.is_over:
            # Random opponent reply.
            moves = self.position.legal_moves()
            reply = moves[self.rng.integers(0, len(moves))]
            self.position = self.position.play(reply)

        done = self.position.is_over
        reward = penalty
        if done:
            reward += self.position.board.area_score() > 0 and 1.0 or -1.0
        info: Dict[str, Any] = {"move_count": self.position.move_count}
        return self.position.features(), reward, done, info
