"""Observation/action spaces (gym-style)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np


@dataclass(frozen=True)
class Box:
    """Continuous space with elementwise bounds."""

    low: float
    high: float
    shape: Tuple[int, ...]

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=self.shape).astype(np.float32)

    def contains(self, value: np.ndarray) -> bool:
        value = np.asarray(value)
        return value.shape == self.shape and bool(np.all(value >= self.low - 1e-6) and np.all(value <= self.high + 1e-6))

    def clip(self, value: np.ndarray) -> np.ndarray:
        return np.clip(np.asarray(value, dtype=np.float32), self.low, self.high)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape))


@dataclass(frozen=True)
class Discrete:
    """Finite space of ``n`` actions labelled ``0..n-1``."""

    n: int

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(0, self.n))

    def contains(self, value: Union[int, np.integer]) -> bool:
        return 0 <= int(value) < self.n

    @property
    def size(self) -> int:
        return self.n


Space = Union[Box, Discrete]


def space_dim(space: Space) -> int:
    """Flat dimensionality used when wiring a network to a space."""
    if isinstance(space, Box):
        return space.size
    return space.n
