"""Simulators: Atari Pong, MuJoCo-style locomotion, Go, and AirLearning."""

from .airlearning import AirLearningEnv
from .atari import PongEnv
from .base import Env, StepResult
from .go import BLACK, EMPTY, WHITE, GoBoard, GoEnv, GoPosition, opponent
from .mujoco import AntEnv, HalfCheetahEnv, HopperEnv, LocomotionEnv, Walker2DEnv
from .physics import BodySpec, LocomotionDynamics
from .registry import SIMULATOR_COMPLEXITY, available_simulators, make, register
from .spaces import Box, Discrete, Space, space_dim

__all__ = [
    "AirLearningEnv",
    "PongEnv",
    "Env",
    "StepResult",
    "BLACK",
    "EMPTY",
    "WHITE",
    "GoBoard",
    "GoEnv",
    "GoPosition",
    "opponent",
    "AntEnv",
    "HalfCheetahEnv",
    "HopperEnv",
    "LocomotionEnv",
    "Walker2DEnv",
    "BodySpec",
    "LocomotionDynamics",
    "SIMULATOR_COMPLEXITY",
    "available_simulators",
    "make",
    "register",
    "Box",
    "Discrete",
    "Space",
    "space_dim",
]
