"""Atari Pong, the paper's low-complexity example simulator (Section 2.1).

A real, playable Pong: ball and two paddles with simple physics, a scripted
opponent that tracks the ball imperfectly, and a win condition at 21 points.
Observations are a RAM-style 8-dimensional state vector (paddle positions,
ball position and velocity, score difference) rather than raw pixels so the
networks stay in the small-MLP regime the paper's workloads use.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from ..system import System
from .base import Env, StepResult
from .spaces import Box, Discrete

ACTION_NOOP = 0
ACTION_UP = 1
ACTION_DOWN = 2


class PongEnv(Env):
    """Single-player-vs-scripted-opponent Pong."""

    sim_id = "Pong"
    FIELD_HEIGHT = 1.0
    FIELD_WIDTH = 1.0
    PADDLE_HEIGHT = 0.2
    PADDLE_SPEED = 0.04
    BALL_SPEED = 0.03
    WIN_SCORE = 21
    MAX_STEPS = 5_000

    observation_space = Box(low=-1.0, high=1.0, shape=(8,))
    action_space = Discrete(3)

    def __init__(self, system: System, *, seed: int = 0, opponent_skill: float = 0.8) -> None:
        super().__init__(system, seed=seed)
        if not 0.0 <= opponent_skill <= 1.0:
            raise ValueError("opponent_skill must be in [0, 1]")
        self.opponent_skill = opponent_skill
        self._state: Dict[str, float] = {}
        self._steps_in_episode = 0

    # --------------------------------------------------------------- helpers
    def _observation(self) -> np.ndarray:
        s = self._state
        return np.array(
            [
                s["agent_y"], s["opp_y"],
                s["ball_x"], s["ball_y"],
                s["ball_vx"] / self.BALL_SPEED, s["ball_vy"] / self.BALL_SPEED,
                (s["agent_score"] - s["opp_score"]) / self.WIN_SCORE,
                self._steps_in_episode / self.MAX_STEPS,
            ],
            dtype=np.float32,
        )

    def _serve(self, direction: float) -> None:
        angle = self.rng.uniform(-0.7, 0.7)
        self._state.update(
            ball_x=0.5,
            ball_y=float(self.rng.uniform(0.3, 0.7)),
            ball_vx=direction * self.BALL_SPEED * float(np.cos(angle)),
            ball_vy=self.BALL_SPEED * float(np.sin(angle)),
        )

    # -------------------------------------------------------------- Env hooks
    def _reset_state(self) -> np.ndarray:
        self._state = {
            "agent_y": 0.5, "opp_y": 0.5,
            "agent_score": 0.0, "opp_score": 0.0,
            "ball_x": 0.5, "ball_y": 0.5, "ball_vx": 0.0, "ball_vy": 0.0,
        }
        self._steps_in_episode = 0
        self._serve(direction=1.0 if self.rng.uniform() < 0.5 else -1.0)
        return self._observation()

    def _step_state(self, action: int) -> StepResult:
        s = self._state
        self._steps_in_episode += 1

        # Agent paddle (right side).
        if action == ACTION_UP:
            s["agent_y"] = min(s["agent_y"] + self.PADDLE_SPEED, 1.0)
        elif action == ACTION_DOWN:
            s["agent_y"] = max(s["agent_y"] - self.PADDLE_SPEED, 0.0)

        # Scripted opponent tracks the ball with limited skill.
        if self.rng.uniform() < self.opponent_skill:
            if s["ball_y"] > s["opp_y"] + 0.02:
                s["opp_y"] = min(s["opp_y"] + self.PADDLE_SPEED, 1.0)
            elif s["ball_y"] < s["opp_y"] - 0.02:
                s["opp_y"] = max(s["opp_y"] - self.PADDLE_SPEED, 0.0)

        # Ball physics.
        s["ball_x"] += s["ball_vx"]
        s["ball_y"] += s["ball_vy"]
        if s["ball_y"] <= 0.0 or s["ball_y"] >= self.FIELD_HEIGHT:
            s["ball_vy"] = -s["ball_vy"]
            s["ball_y"] = float(np.clip(s["ball_y"], 0.0, self.FIELD_HEIGHT))

        reward = 0.0
        # Right wall: agent must intercept.
        if s["ball_x"] >= self.FIELD_WIDTH:
            if abs(s["ball_y"] - s["agent_y"]) <= self.PADDLE_HEIGHT / 2:
                s["ball_vx"] = -abs(s["ball_vx"])
                s["ball_vy"] += (s["ball_y"] - s["agent_y"]) * 0.05
                s["ball_x"] = self.FIELD_WIDTH
            else:
                s["opp_score"] += 1
                reward = -1.0
                self._serve(direction=-1.0)
        # Left wall: opponent must intercept.
        elif s["ball_x"] <= 0.0:
            if abs(s["ball_y"] - s["opp_y"]) <= self.PADDLE_HEIGHT / 2:
                s["ball_vx"] = abs(s["ball_vx"])
                s["ball_vy"] += (s["ball_y"] - s["opp_y"]) * 0.05
                s["ball_x"] = 0.0
            else:
                s["agent_score"] += 1
                reward = 1.0
                self._serve(direction=1.0)

        done = (
            s["agent_score"] >= self.WIN_SCORE
            or s["opp_score"] >= self.WIN_SCORE
            or self._steps_in_episode >= self.MAX_STEPS
        )
        info: Dict[str, Any] = {
            "agent_score": int(s["agent_score"]),
            "opponent_score": int(s["opp_score"]),
        }
        return self._observation(), reward, done, info
